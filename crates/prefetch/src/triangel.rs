//! Triangel-style temporal prefetching with usefulness-sampled
//! metadata filtering (after Ainsworth & Elsman, ISCA 2024,
//! arXiv:2406.10627).
//!
//! Classic temporal (Markov) prefetchers record every observed
//! miss-successor pair, so irregular streams bloat the metadata table
//! and evict the pairs that actually recur. Triangel's contribution is
//! *filtering the training stream*: a small, always-on sample table
//! watches a 1-in-N sample of each PC's miss pairs and checks — on the
//! PC's next miss — whether the sampled successor actually repeated.
//! Each PC carries a signed usefulness counter fed by those sampled
//! checks, and only PCs whose counter stays non-negative are allowed
//! to *train* the main Markov table (everyone may still read it).
//! A thrashy pointer-chase PC thus loses its training rights after a
//! handful of failed samples and stops polluting shared metadata.
//!
//! Adaptation to this reproduction's event model: the engine reports
//! only off-chip load misses and prefetch-buffer hits (no raw L1
//! accesses), so the "temporal stream" here is the per-PC sequence of
//! L2-visible lines, and prefetch-buffer hits extend it exactly as the
//! misses they replaced would have. Tables are set-associative with
//! LRU stamps, matching the other on-chip baselines; all state is
//! deterministic (the 1-in-N sampler is a per-PC miss counter, not a
//! random draw), which the lockstep byte-identity battery requires.

use ebcp_types::{AccessKind, LineAddr, Pc};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// Triangel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriangelConfig {
    /// Per-PC training-state entries (direct-mapped; power of two).
    pub pc_entries: usize,
    /// Sample-table sets (the always-on 1-in-N pair sampler).
    pub sample_sets: usize,
    /// Sample-table ways per set.
    pub sample_ways: usize,
    /// Main Markov metadata-table sets.
    pub markov_sets: usize,
    /// Markov-table ways per set.
    pub markov_ways: usize,
    /// Maximum chained predictions per miss.
    pub degree: usize,
    /// Sample one pair per this many misses of a PC.
    pub sample_rate: u64,
    /// Usefulness counter saturation bound (counts in `[-cap, cap]`).
    pub useful_cap: i32,
}

impl TriangelConfig {
    /// Reference configuration: 1K PC entries, 64×4 sampler,
    /// 4K×8 Markov table, degree 4, 1-in-8 sampling.
    pub const fn default_config() -> Self {
        TriangelConfig {
            pc_entries: 1 << 10,
            sample_sets: 64,
            sample_ways: 4,
            markov_sets: 4 << 10,
            markov_ways: 8,
            degree: 4,
            sample_rate: 8,
            useful_cap: 8,
        }
    }

    /// A shrunk configuration for scaled-down sweeps.
    pub const fn small() -> Self {
        TriangelConfig {
            pc_entries: 256,
            sample_sets: 16,
            sample_ways: 4,
            markov_sets: 512,
            markov_ways: 8,
            degree: 4,
            sample_rate: 8,
            useful_cap: 8,
        }
    }
}

/// Sentinel for "no line recorded yet".
const NO_LINE: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct PcEntry {
    /// Full PC tag (`NO_LINE` = invalid).
    pc: u64,
    /// Last L2-visible line this PC touched.
    last_line: u64,
    /// Armed sample check: the line the sampler predicts this PC
    /// touches next (`NO_LINE` = none armed).
    pending: u64,
    /// Signed usefulness; training rights require `>= 0`.
    useful: i32,
    /// Misses observed (drives the deterministic 1-in-N sampler).
    misses: u64,
}

impl Default for PcEntry {
    fn default() -> Self {
        PcEntry {
            pc: NO_LINE,
            last_line: NO_LINE,
            pending: NO_LINE,
            useful: 0,
            misses: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PairEntry {
    key: u64,
    next: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative line → successor-line table (shared by the sample
/// table and the main Markov table).
#[derive(Debug, Clone)]
struct PairTable {
    entries: Vec<PairEntry>,
    sets: usize,
    ways: usize,
    stamp: u64,
}

impl PairTable {
    fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0);
        PairTable {
            entries: vec![PairEntry::default(); sets * ways],
            sets,
            ways,
            stamp: 0,
        }
    }

    fn lookup(&mut self, key: u64) -> Option<u64> {
        let base = (key % self.sets as u64) as usize * self.ways;
        self.stamp += 1;
        for i in base..base + self.ways {
            let e = &mut self.entries[i];
            if e.valid && e.key == key {
                e.lru = self.stamp;
                return Some(e.next);
            }
        }
        None
    }

    fn insert(&mut self, key: u64, next: u64) {
        let base = (key % self.sets as u64) as usize * self.ways;
        self.stamp += 1;
        for i in base..base + self.ways {
            if self.entries[i].valid && self.entries[i].key == key {
                self.entries[i].next = next;
                self.entries[i].lru = self.stamp;
                return;
            }
        }
        let victim = (base..base + self.ways)
            .min_by_key(|&i| {
                if self.entries[i].valid {
                    self.entries[i].lru
                } else {
                    0
                }
            })
            .unwrap_or(base);
        self.entries[victim] = PairEntry {
            key,
            next,
            valid: true,
            lru: self.stamp,
        };
    }
}

/// Triangel-style temporal prefetcher with sampled metadata filtering.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{Prefetcher, TriangelConfig, TriangelPrefetcher};
/// let p = TriangelPrefetcher::new(TriangelConfig::default_config());
/// assert_eq!(p.name(), "triangel");
/// ```
#[derive(Debug, Clone)]
pub struct TriangelPrefetcher {
    config: TriangelConfig,
    pcs: Vec<PcEntry>,
    sample: PairTable,
    markov: PairTable,
    name: String,
}

impl TriangelPrefetcher {
    /// Creates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `pc_entries` is zero or not a power of two, any table
    /// dimension is zero, or `sample_rate` is zero.
    pub fn new(config: TriangelConfig) -> Self {
        assert!(config.pc_entries.is_power_of_two() && config.pc_entries > 0);
        assert!(config.sample_rate > 0);
        TriangelPrefetcher {
            config,
            pcs: vec![PcEntry::default(); config.pc_entries],
            sample: PairTable::new(config.sample_sets, config.sample_ways),
            markov: PairTable::new(config.markov_sets, config.markov_ways),
            name: "triangel".to_owned(),
        }
    }

    /// Overrides the display name.
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    fn pc_slot(&self, pc: u64) -> usize {
        (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13) as usize & (self.config.pc_entries - 1)
    }

    fn handle(&mut self, pc: Pc, line: LineAddr, out: &mut Vec<Action>) {
        let slot = self.pc_slot(pc.get());
        let cap = self.config.useful_cap;
        let mut e = self.pcs[slot];
        if e.pc != pc.get() {
            e = PcEntry {
                pc: pc.get(),
                ..PcEntry::default()
            };
        }

        // Resolve an armed sample check: did the sampled successor
        // actually repeat?
        if e.pending != NO_LINE {
            if e.pending == line.index() {
                e.useful = (e.useful + 1).min(cap);
            } else {
                e.useful = (e.useful - 1).max(-cap);
            }
            e.pending = NO_LINE;
        }

        if e.last_line != NO_LINE {
            e.misses += 1;
            // 1-in-N sampler: record this pair in the sample table.
            if e.misses % self.config.sample_rate == 0 {
                self.sample.insert(e.last_line, line.index());
            }
            // Arm a check if the sampler has seen this line before: the
            // PC's next miss should match the sampled successor.
            if let Some(next) = self.sample.lookup(line.index()) {
                e.pending = next;
            }
            // Metadata filtering: only PCs with standing usefulness may
            // train the shared Markov table.
            if e.useful >= 0 {
                self.markov.insert(e.last_line, line.index());
            }
        }
        e.last_line = line.index();

        // Predict: chain Markov successors from the current line.
        if e.useful >= 0 {
            let mut cur = line.index();
            for _ in 0..self.config.degree {
                let Some(next) = self.markov.lookup(cur) else {
                    break;
                };
                out.push(Action::Prefetch {
                    line: LineAddr::from_index(next),
                    origin: 0,
                });
                cur = next;
            }
        }
        self.pcs[slot] = e;
    }
}

impl Prefetcher for TriangelPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return; // data-side temporal streams only
        }
        self.handle(info.pc, info.line, out);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return;
        }
        // A buffer hit is the miss the prefetch absorbed: the temporal
        // stream continues through it.
        self.handle(info.pc, info.line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(pc: u64, line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(pc),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    fn drive(p: &mut TriangelPrefetcher, pc: u64, lines: &[u64]) -> Vec<u64> {
        let mut pf = Vec::new();
        for &l in lines {
            let mut out = Vec::new();
            p.on_miss(&miss(pc, l), &mut out);
            pf.extend(out.iter().filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            }));
        }
        pf
    }

    #[test]
    fn recurring_stream_is_predicted() {
        let mut p = TriangelPrefetcher::new(TriangelConfig::small());
        let stream: Vec<u64> = (0..8).map(|i| 0x100 + i * 3).collect();
        let mut seq = stream.clone();
        seq.extend(&stream);
        let pf = drive(&mut p, 0x40, &seq);
        // Second pass walks trained Markov pairs.
        assert!(pf.contains(&stream[1]), "{pf:?}");
        assert!(pf.contains(&stream[2]), "{pf:?}");
    }

    #[test]
    fn predictions_chain_up_to_degree() {
        let mut p = TriangelPrefetcher::new(TriangelConfig {
            degree: 3,
            ..TriangelConfig::small()
        });
        let stream = [10u64, 20, 30, 40, 50, 60];
        let mut seq = stream.to_vec();
        seq.push(10);
        let pf = drive(&mut p, 0x40, &seq);
        // Re-touching the head chains 20, 30, 40 (degree 3).
        assert_eq!(pf, vec![20, 30, 40]);
    }

    #[test]
    fn failed_samples_revoke_training_rights() {
        // A PC whose "successor" never repeats: every armed sample check
        // fails, usefulness goes negative, and prediction stops.
        let mut p = TriangelPrefetcher::new(TriangelConfig {
            sample_rate: 1, // sample every pair: fastest feedback
            ..TriangelConfig::small()
        });
        // Lines alternate A -> x_i where x_i never repeats: the sampled
        // pair (A -> x_i) is re-checked on the next visit to A's
        // successor slot and always mismatches.
        let mut seq = Vec::new();
        for i in 0..40u64 {
            seq.push(0xA);
            seq.push(0x1000 + i);
        }
        let pf = drive(&mut p, 0x40, &seq);
        // Early pairs may predict before usefulness collapses; the tail
        // must be silent.
        let tail = drive(&mut p, 0x40, &[0xA, 0x2000, 0xA, 0x3000]);
        assert!(
            tail.is_empty(),
            "filtered PC must stop predicting: {tail:?}"
        );
        let _ = pf;
    }

    #[test]
    fn filtered_pc_does_not_pollute_shared_metadata() {
        // An irregular PC and a recurring PC share the Markov table.
        // Once filtered, the irregular PC stops training, so the
        // recurring PC's pairs survive even in a tiny table.
        let cfg = TriangelConfig {
            markov_sets: 4,
            markov_ways: 2,
            sample_rate: 1,
            ..TriangelConfig::small()
        };
        let mut p = TriangelPrefetcher::new(cfg);
        // Burn in the irregular PC until it is filtered.
        for i in 0..64u64 {
            drive(&mut p, 0x99, &[0xA, 0x4000 + i]);
        }
        // Now interleave: recurring stream + (filtered) irregular noise.
        // Stream lines land in distinct Markov sets (mod 4).
        let stream = [0x10u64, 0x21, 0x32];
        for i in 0..4u64 {
            for &l in &stream {
                drive(&mut p, 0x40, &[l]);
                drive(&mut p, 0x99, &[0x8000 + i * 16 + l]);
            }
        }
        let pf = drive(&mut p, 0x40, &[0x10]);
        assert!(pf.contains(&0x21), "trained pair must survive: {pf:?}");
    }

    #[test]
    fn instruction_misses_ignored() {
        let mut p = TriangelPrefetcher::new(TriangelConfig::small());
        let mut out = Vec::new();
        for l in [1u64, 2, 3, 1, 2, 3] {
            p.on_miss(
                &MissInfo {
                    kind: AccessKind::InstrFetch,
                    ..miss(0x40, l)
                },
                &mut out,
            );
        }
        assert!(out.is_empty());
    }

    #[test]
    fn prefetch_hits_extend_the_stream() {
        let mut p = TriangelPrefetcher::new(TriangelConfig::small());
        drive(&mut p, 0x40, &[1, 2, 3, 1]);
        // The prefetch-buffer hit on 2 continues training the stream.
        let mut out = Vec::new();
        p.on_prefetch_hit(
            &PrefetchHitInfo {
                line: LineAddr::from_index(2),
                pc: Pc::new(0x40),
                kind: AccessKind::Load,
                origin: 0,
                would_be_trigger: false,
                now: 0,
                core: 0,
            },
            &mut out,
        );
        let pf: Vec<u64> = out
            .iter()
            .filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            })
            .collect();
        assert!(pf.contains(&3), "{pf:?}");
    }
}
