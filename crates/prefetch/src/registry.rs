//! Baseline prefetcher registry: configuration enum + factory.

use serde::{Deserialize, Serialize};

use crate::amc::{AmcConfig, AmcPrefetcher};
use crate::api::{NullPrefetcher, Prefetcher};
use crate::fault::{FaultConfig, FaultPrefetcher};
use crate::ghb::{GhbConfig, GhbPrefetcher};
use crate::sms::{SmsConfig, SmsPrefetcher};
use crate::solihin::{SolihinConfig, SolihinPrefetcher};
use crate::stream::{StreamConfig, StreamPrefetcher};
use crate::tcp::{TcpConfig, TcpPrefetcher};
use crate::triangel::{TriangelConfig, TriangelPrefetcher};

/// Configuration of one baseline prefetcher (everything in the Figure 9
/// comparison except EBCP itself, which lives in `ebcp-core`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BaselineConfig {
    /// No prefetching.
    None,
    /// Stream prefetcher.
    Stream(StreamConfig),
    /// GHB PC/DC.
    Ghb(GhbConfig),
    /// Tag Correlating Prefetcher.
    Tcp(TcpConfig),
    /// Spatial Memory Streaming.
    Sms(SmsConfig),
    /// Solihin memory-side correlation.
    Solihin(SolihinConfig),
    /// Triangel-style temporal prefetching with usefulness-sampled
    /// metadata filtering (modern roster).
    Triangel(TriangelConfig),
    /// Access-to-miss correlation with epoch-decayed confidence
    /// (modern roster).
    Amc(AmcConfig),
    /// Fault injection for harness resilience tests (never part of any
    /// figure roster): behaves like [`NullPrefetcher`], then panics.
    Fault(FaultConfig),
}

impl BaselineConfig {
    /// The paper's Figure 9 baseline roster, with display names.
    pub fn figure9_roster() -> Vec<(&'static str, BaselineConfig)> {
        vec![
            ("ghb-small", BaselineConfig::Ghb(GhbConfig::small())),
            ("ghb-large", BaselineConfig::Ghb(GhbConfig::large())),
            ("tcp-small", BaselineConfig::Tcp(TcpConfig::small())),
            ("tcp-large", BaselineConfig::Tcp(TcpConfig::large())),
            ("stream", BaselineConfig::Stream(StreamConfig::default())),
            ("sms", BaselineConfig::Sms(SmsConfig::default())),
            (
                "solihin-3,2",
                BaselineConfig::Solihin(SolihinConfig::original()),
            ),
            (
                "solihin-6,1",
                BaselineConfig::Solihin(SolihinConfig::deep()),
            ),
        ]
    }

    /// The post-2007 competitor roster (ROADMAP item 3), with display
    /// names. Kept separate from [`BaselineConfig::figure9_roster`] so
    /// the paper's figures stay the paper's figures; comparison sweeps
    /// concatenate the two.
    pub fn modern_roster() -> Vec<(&'static str, BaselineConfig)> {
        vec![
            (
                "triangel",
                BaselineConfig::Triangel(TriangelConfig::default_config()),
            ),
            ("amc", BaselineConfig::Amc(AmcConfig::default_config())),
        ]
    }

    /// Builds the prefetcher, tagging it with `name`.
    pub fn build_named(&self, name: &str) -> Box<dyn Prefetcher> {
        match *self {
            BaselineConfig::None => Box::new(NullPrefetcher),
            BaselineConfig::Stream(c) => Box::new(StreamPrefetcher::new(c)),
            BaselineConfig::Ghb(c) => Box::new(GhbPrefetcher::new(c).with_name(name)),
            BaselineConfig::Tcp(c) => Box::new(TcpPrefetcher::new(c).with_name(name)),
            BaselineConfig::Sms(c) => Box::new(SmsPrefetcher::new(c)),
            BaselineConfig::Solihin(c) => Box::new(SolihinPrefetcher::new(c).with_name(name)),
            BaselineConfig::Triangel(c) => Box::new(TriangelPrefetcher::new(c).with_name(name)),
            BaselineConfig::Amc(c) => Box::new(AmcPrefetcher::new(c).with_name(name)),
            BaselineConfig::Fault(c) => Box::new(FaultPrefetcher::new(c)),
        }
    }

    /// Builds the prefetcher with its default name.
    pub fn build(&self) -> Box<dyn Prefetcher> {
        match *self {
            BaselineConfig::None => Box::new(NullPrefetcher),
            BaselineConfig::Stream(c) => Box::new(StreamPrefetcher::new(c)),
            BaselineConfig::Ghb(c) => Box::new(GhbPrefetcher::new(c)),
            BaselineConfig::Tcp(c) => Box::new(TcpPrefetcher::new(c)),
            BaselineConfig::Sms(c) => Box::new(SmsPrefetcher::new(c)),
            BaselineConfig::Solihin(c) => Box::new(SolihinPrefetcher::new(c)),
            BaselineConfig::Triangel(c) => Box::new(TriangelPrefetcher::new(c)),
            BaselineConfig::Amc(c) => Box::new(AmcPrefetcher::new(c)),
            BaselineConfig::Fault(c) => Box::new(FaultPrefetcher::new(c)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_builds_every_baseline() {
        for (name, cfg) in BaselineConfig::figure9_roster() {
            let p = cfg.build_named(name);
            assert_eq!(p.name(), name);
        }
    }

    #[test]
    fn roster_matches_figure9() {
        let names: Vec<_> = BaselineConfig::figure9_roster()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            vec![
                "ghb-small",
                "ghb-large",
                "tcp-small",
                "tcp-large",
                "stream",
                "sms",
                "solihin-3,2",
                "solihin-6,1"
            ]
        );
    }

    #[test]
    fn modern_roster_builds_and_names() {
        let names: Vec<_> = BaselineConfig::modern_roster()
            .into_iter()
            .map(|(n, cfg)| {
                let p = cfg.build_named(n);
                assert_eq!(p.name(), n);
                n
            })
            .collect();
        assert_eq!(names, vec!["triangel", "amc"]);
    }

    #[test]
    fn default_names() {
        assert_eq!(BaselineConfig::None.build().name(), "none");
        assert_eq!(
            BaselineConfig::Stream(StreamConfig::default())
                .build()
                .name(),
            "stream"
        );
        assert_eq!(
            BaselineConfig::Solihin(SolihinConfig::deep())
                .build()
                .name(),
            "solihin-6,1"
        );
    }
}
