//! The event-driven prefetcher interface.

use ebcp_types::{AccessKind, Cycle, LineAddr, Pc};

/// An off-chip L2 miss reported to the prefetcher.
///
/// Only instruction-fetch and load misses are reported (§3.4.2: stores
/// are never recorded under weak consistency). Prefetch-buffer hits are
/// reported separately via [`PrefetchHitInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissInfo {
    /// The missing line.
    pub line: LineAddr,
    /// PC of the missing instruction (the instruction's own PC for
    /// fetches; the load's PC for loads).
    pub pc: Pc,
    /// Instruction fetch or load.
    pub kind: AccessKind,
    /// Whether this miss is an *epoch trigger*: the number of outstanding
    /// off-chip misses transitioned from 0 to 1 (§2.1).
    pub epoch_trigger: bool,
    /// Current core cycle.
    pub now: Cycle,
    /// Which core issued the access (0 on a single-core machine). The
    /// on-chip prefetcher control sits in front of the core-to-L2
    /// crossbar and therefore knows this (§3.2, Figure 2); a memory-side
    /// engine does not.
    pub core: u8,
}

/// A demand hit in the prefetch buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchHitInfo {
    /// The line that hit.
    pub line: LineAddr,
    /// PC of the accessing instruction.
    pub pc: Pc,
    /// Instruction fetch or load.
    pub kind: AccessKind,
    /// The origin token stored when the line was prefetched (EBCP stores
    /// the correlation-table index here, §3.4.3).
    pub origin: u64,
    /// Whether this access *would have been* an epoch trigger had it
    /// missed (no off-chip demand misses were outstanding). §3.4.3: the
    /// first miss *or prefetch buffer hit* in a new epoch looks up the
    /// correlation table.
    pub would_be_trigger: bool,
    /// Current core cycle.
    pub now: Cycle,
    /// Which core made the access (0 on a single-core machine).
    pub core: u8,
}

/// What a prefetcher asks the engine to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fetch `line` into the prefetch buffer (low-priority memory read).
    /// `origin` is stored with the line and handed back on a hit.
    Prefetch {
        /// Line to prefetch.
        line: LineAddr,
        /// Opaque token returned on a buffer hit.
        origin: u64,
    },
    /// Read a main-memory-resident predictor table entry (low-priority).
    /// The engine calls [`Prefetcher::on_table_done`] with `token` when
    /// the read completes, or [`Prefetcher::on_table_dropped`] if the bus
    /// was saturated and the read was dropped.
    TableRead {
        /// Opaque token identifying the pending read.
        token: u64,
        /// Extra cycles before the read can start. Zero for on-chip
        /// prefetcher control (EBCP); memory-side schemes pay the
        /// processor-to-controller trip before their engine can act.
        delay: u64,
    },
    /// Write a main-memory-resident predictor table entry (lowest
    /// priority; bandwidth accounting only — nothing waits on it).
    TableWrite,
}

/// A hardware prefetcher, driven by engine events.
///
/// Implementations append [`Action`]s to the `out` vector passed to each
/// hook; the engine executes them (issuing memory traffic, enforcing
/// priorities, dropping on saturation) and calls back for table reads.
pub trait Prefetcher {
    /// Short identifier used in reports ("ebcp", "ghb-large", ...).
    fn name(&self) -> &str;

    /// An off-chip L2 miss (instruction fetch or load) was issued.
    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>);

    /// A demand access hit the prefetch buffer.
    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>);

    /// All outstanding off-chip demand misses completed (the epoch's
    /// off-chip phase ended).
    fn on_epoch_end(&mut self, now: Cycle, out: &mut Vec<Action>) {
        let _ = (now, out);
    }

    /// A previously requested table read completed.
    fn on_table_done(&mut self, token: u64, now: Cycle, out: &mut Vec<Action>) {
        let _ = (token, now, out);
    }

    /// A previously requested table read was dropped (bus saturated).
    fn on_table_dropped(&mut self, token: u64) {
        let _ = token;
    }

    /// Downcast hook for end-of-run inspection of concrete prefetcher
    /// state (statistics, table contents). Default: no access.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Resets the prefetcher's *statistics* (not its learned state) at
    /// the end of warm-up. Default: no-op.
    fn reset_aux_stats(&mut self) {}
}

/// The no-prefetching baseline.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{NullPrefetcher, Prefetcher};
/// assert_eq!(NullPrefetcher.name(), "none");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn name(&self) -> &str {
        "none"
    }

    fn on_miss(&mut self, _info: &MissInfo, _out: &mut Vec<Action>) {}

    fn on_prefetch_hit(&mut self, _info: &PrefetchHitInfo, _out: &mut Vec<Action>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_prefetcher_is_silent() {
        let mut p = NullPrefetcher;
        let mut out = Vec::new();
        p.on_miss(
            &MissInfo {
                line: LineAddr::from_index(0),
                pc: Pc::new(0),
                kind: AccessKind::Load,
                epoch_trigger: true,
                now: 0,
                core: 0,
            },
            &mut out,
        );
        p.on_prefetch_hit(
            &PrefetchHitInfo {
                line: LineAddr::from_index(0),
                pc: Pc::new(0),
                kind: AccessKind::Load,
                origin: 0,
                would_be_trigger: false,
                now: 0,
                core: 0,
            },
            &mut out,
        );
        p.on_epoch_end(10, &mut out);
        p.on_table_done(0, 10, &mut out);
        p.on_table_dropped(0);
        assert!(out.is_empty());
    }

    #[test]
    fn actions_are_comparable() {
        assert_eq!(
            Action::Prefetch {
                line: LineAddr::from_index(1),
                origin: 2
            },
            Action::Prefetch {
                line: LineAddr::from_index(1),
                origin: 2
            }
        );
        assert_ne!(
            Action::TableRead { token: 1, delay: 0 },
            Action::TableRead { token: 2, delay: 0 }
        );
    }
}
