//! The Tag Correlating Prefetcher baseline (Hu, Martonosi & Kaxiras,
//! HPCA 2003).
//!
//! TCP correlates *cache tags* instead of full addresses: per cache set,
//! a Tag History Table (THT) remembers the last two tags that missed; a
//! Pattern History Table (PHT), indexed by that two-tag history, predicts
//! the tag of the next miss in the same set. The prefetch address is the
//! predicted tag recombined with the current set. Tag correlation
//! compresses the table (many addresses share tag sequences), which is
//! its selling point — and its weakness on workloads whose tag streams
//! are as irregular as their address streams.
//!
//! Configuration per §5.3: THT has 128 entries (one per L1 set); *TCP
//! small* has a 2048-set × 16-way PHT (≈256 KB), *TCP large* a 32K-set ×
//! 16-way PHT (≈4 MB). Load misses only; degree 6 via chained
//! predictions. On-chip tables: predictions are immediate.

use ebcp_types::{AccessKind, LineAddr};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// TCP configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpConfig {
    /// L1 sets (tag/set split of miss addresses). 32 KB 4-way / 64 B = 128.
    pub l1_sets: u64,
    /// PHT sets.
    pub pht_sets: usize,
    /// PHT ways per set.
    pub pht_ways: usize,
    /// Maximum chained predictions per miss.
    pub degree: usize,
}

impl TcpConfig {
    /// The paper's *TCP small*: 2048 PHT sets × 16 ways (≈256 KB).
    pub const fn small() -> Self {
        TcpConfig {
            l1_sets: 128,
            pht_sets: 2048,
            pht_ways: 16,
            degree: 6,
        }
    }

    /// The paper's *TCP large*: 32K PHT sets × 16 ways (≈4 MB).
    pub const fn large() -> Self {
        TcpConfig {
            l1_sets: 128,
            pht_sets: 32 << 10,
            pht_ways: 16,
            degree: 6,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PhtEntry {
    key: u64,
    next_tag: u64,
    valid: bool,
    lru: u64,
}

/// The tag-correlating prefetcher.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{Prefetcher, TcpConfig, TcpPrefetcher};
/// let p = TcpPrefetcher::new(TcpConfig::large());
/// assert_eq!(p.name(), "tcp");
/// ```
#[derive(Debug, Clone)]
pub struct TcpPrefetcher {
    config: TcpConfig,
    /// Per-L1-set history: the last two missing tags (older, newer).
    tht: Vec<[u64; 2]>,
    pht: Vec<PhtEntry>,
    stamp: u64,
    name: String,
}

impl TcpPrefetcher {
    /// Creates a TCP prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if any table dimension is zero or `l1_sets` is not a power
    /// of two.
    pub fn new(config: TcpConfig) -> Self {
        assert!(config.l1_sets.is_power_of_two() && config.l1_sets > 0);
        assert!(config.pht_sets > 0 && config.pht_ways > 0);
        TcpPrefetcher {
            config,
            tht: vec![[u64::MAX, u64::MAX]; config.l1_sets as usize],
            pht: vec![PhtEntry::default(); config.pht_sets * config.pht_ways],
            stamp: 0,
            name: "tcp".to_owned(),
        }
    }

    /// Overrides the display name (e.g. "tcp-small" / "tcp-large").
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    fn split(&self, line: LineAddr) -> (u64, u64) {
        let set = line.index() & (self.config.l1_sets - 1);
        let tag = line.index() >> self.config.l1_sets.trailing_zeros();
        (set, tag)
    }

    fn history_key(t1: u64, t2: u64) -> u64 {
        t1.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(13) ^ t2
    }

    fn pht_lookup(&mut self, key: u64) -> Option<u64> {
        let set = (key % self.config.pht_sets as u64) as usize;
        let base = set * self.config.pht_ways;
        self.stamp += 1;
        for i in base..base + self.config.pht_ways {
            let e = &mut self.pht[i];
            if e.valid && e.key == key {
                e.lru = self.stamp;
                return Some(e.next_tag);
            }
        }
        None
    }

    fn pht_update(&mut self, key: u64, next_tag: u64) {
        let set = (key % self.config.pht_sets as u64) as usize;
        let base = set * self.config.pht_ways;
        self.stamp += 1;
        // Hit: refresh.
        for i in base..base + self.config.pht_ways {
            if self.pht[i].valid && self.pht[i].key == key {
                self.pht[i].next_tag = next_tag;
                self.pht[i].lru = self.stamp;
                return;
            }
        }
        // Miss: replace LRU (or an invalid way).
        let victim = (base..base + self.config.pht_ways)
            .min_by_key(|&i| {
                if self.pht[i].valid {
                    self.pht[i].lru
                } else {
                    0
                }
            })
            .expect("nonempty set");
        self.pht[victim] = PhtEntry {
            key,
            next_tag,
            valid: true,
            lru: self.stamp,
        };
    }

    fn handle(&mut self, line: LineAddr, out: &mut Vec<Action>) {
        let (set, tag) = self.split(line);
        let [t1, t2] = self.tht[set as usize];
        // Learn: the history (t1, t2) led to `tag`.
        if t1 != u64::MAX && t2 != u64::MAX {
            self.pht_update(Self::history_key(t1, t2), tag);
        }
        // Shift the history.
        self.tht[set as usize] = [t2, tag];
        // Predict: chain tag predictions up to `degree`.
        let (mut h1, mut h2) = (t2, tag);
        let sets_shift = self.config.l1_sets.trailing_zeros();
        for _ in 0..self.config.degree {
            if h1 == u64::MAX {
                break;
            }
            let Some(next) = self.pht_lookup(Self::history_key(h1, h2)) else {
                break;
            };
            out.push(Action::Prefetch {
                line: LineAddr::from_index((next << sets_shift) | set),
                origin: 0,
            });
            h1 = h2;
            h2 = next;
        }
    }
}

impl Prefetcher for TcpPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return; // load misses only (§5.3)
        }
        self.handle(info.line, out);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        if info.kind != AccessKind::Load {
            return;
        }
        self.handle(info.line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::Pc;

    fn miss(line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(0),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    fn drive(p: &mut TcpPrefetcher, lines: &[u64]) -> Vec<u64> {
        let mut pf = Vec::new();
        for &l in lines {
            let mut out = Vec::new();
            p.on_miss(&miss(l), &mut out);
            pf.extend(out.iter().filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            }));
        }
        pf
    }

    /// Lines in L1 set 5 with the given tags (128 sets).
    fn in_set5(tag: u64) -> u64 {
        (tag << 7) | 5
    }

    #[test]
    fn recurring_tag_sequence_predicted() {
        let mut p = TcpPrefetcher::new(TcpConfig {
            degree: 1,
            ..TcpConfig::small()
        });
        // Tag sequence 10, 20, 30 in set 5, twice.
        let seq: Vec<u64> = [10, 20, 30, 10, 20, 30]
            .iter()
            .map(|&t| in_set5(t))
            .collect();
        let pf = drive(&mut p, &seq);
        // Second pass: after (10, 20) the PHT predicts tag 30 in set 5.
        assert!(pf.contains(&in_set5(30)), "{pf:?}");
    }

    #[test]
    fn chained_predictions_respect_degree() {
        let mut p = TcpPrefetcher::new(TcpConfig {
            degree: 3,
            ..TcpConfig::small()
        });
        let seq: Vec<u64> = [1, 2, 3, 4, 5, 6, 1, 2]
            .iter()
            .map(|&t| in_set5(t))
            .collect();
        let pf = drive(&mut p, &seq);
        // After the second (1,2), the chain 3,4,5 should be prefetched.
        assert!(
            pf.ends_with(&[in_set5(3), in_set5(4), in_set5(5)]),
            "{pf:?}"
        );
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut p = TcpPrefetcher::new(TcpConfig {
            degree: 1,
            ..TcpConfig::small()
        });
        // Set 5 sees tags 1,2,3 twice; set 9 sees unrelated tags.
        let mut seq = Vec::new();
        for pass in 0..2 {
            for t in [1u64, 2, 3] {
                seq.push(in_set5(t));
                seq.push((t << 7) | 9); // same tags, set 9
            }
            let _ = pass;
        }
        let pf = drive(&mut p, &seq);
        // Predictions for set 5 carry set 5 in their address.
        assert!(pf.iter().any(|l| l & 127 == 5));
        // No cross-set corruption: set-9 predictions carry set 9.
        for l in &pf {
            assert!(l & 127 == 5 || l & 127 == 9);
        }
    }

    #[test]
    fn no_prediction_for_novel_history() {
        let mut p = TcpPrefetcher::new(TcpConfig::small());
        let pf = drive(&mut p, &[in_set5(1), in_set5(2), in_set5(3)]);
        assert!(pf.is_empty(), "first pass must be silent: {pf:?}");
    }

    #[test]
    fn instruction_misses_ignored() {
        let mut p = TcpPrefetcher::new(TcpConfig::small());
        let mut out = Vec::new();
        for t in [1u64, 2, 3, 1, 2, 3] {
            p.on_miss(
                &MissInfo {
                    line: LineAddr::from_index(in_set5(t)),
                    pc: Pc::new(0),
                    kind: AccessKind::InstrFetch,
                    epoch_trigger: true,
                    now: 0,
                    core: 0,
                },
                &mut out,
            );
        }
        assert!(out.is_empty());
    }

    #[test]
    fn small_pht_thrashes_under_many_patterns() {
        // 1-set, 2-way PHT: more than two live histories evict each other.
        let cfg = TcpConfig {
            l1_sets: 128,
            pht_sets: 1,
            pht_ways: 2,
            degree: 1,
        };
        let mut p = TcpPrefetcher::new(cfg);
        let mut seq = Vec::new();
        for pass in 0..2 {
            for base in 0..6u64 {
                // Six distinct tag triples in six sets.
                let set = base;
                for t in [base * 10 + 1, base * 10 + 2, base * 10 + 3] {
                    seq.push((t << 7) | set);
                }
            }
            let _ = pass;
        }
        let pf = drive(&mut p, &seq);
        // With 2 PHT entries for 12 histories, most predictions are lost.
        assert!(pf.len() <= 4, "tiny PHT should thrash: {pf:?}");
    }
}
