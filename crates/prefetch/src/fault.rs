//! Fault-injection prefetcher for harness resilience testing.
//!
//! A production-scale sweep must survive a misbehaving prefetcher: one
//! panicking cell may not take down the other several hundred. The
//! [`FaultPrefetcher`] is the controlled failure the harness's
//! panic-isolation layer is tested against — it behaves like the null
//! prefetcher until its trigger count, then panics inside the engine's
//! miss hook, exactly where a buggy real prefetcher would.
//!
//! It is registered like any baseline ([`BaselineConfig::Fault`]) so
//! fault cells flow through the full job pipeline — content hashing,
//! dedup, worker pool, result store — rather than through a test-only
//! side door. It never appears in any figure roster.
//!
//! [`BaselineConfig::Fault`]: crate::BaselineConfig

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// Configuration of the injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Panic when more than this many misses have been observed
    /// (0 = on the first miss).
    pub panic_after_misses: u64,
    /// Optional *fuse* token making the fault one-shot: the first
    /// triggering run creates a fuse file (a token-derived path under
    /// the temp directory, see [`FaultConfig::fuse_path`]) and panics;
    /// any run that finds the file already present behaves like the
    /// null prefetcher. This is how tests exercise the harness's
    /// retry-once path deterministically (attempt 1 blows the fuse,
    /// attempt 2 succeeds).
    pub fuse_token: Option<u64>,
}

impl FaultConfig {
    /// A fault that panics unconditionally after `n` misses.
    pub const fn panic_after(n: u64) -> Self {
        FaultConfig {
            panic_after_misses: n,
            fuse_token: None,
        }
    }

    /// A one-shot fault: panics after `n` misses unless the fuse file
    /// for `token` already exists, creating it on the way down.
    pub const fn one_shot(n: u64, token: u64) -> Self {
        FaultConfig {
            panic_after_misses: n,
            fuse_token: Some(token),
        }
    }

    /// The fuse file a one-shot fault checks and blows; `None` for an
    /// unconditional fault. Callers owning a one-shot fault should
    /// remove the file when done.
    pub fn fuse_path(&self) -> Option<PathBuf> {
        self.fuse_token
            .map(|t| std::env::temp_dir().join(format!("ebcp-fault-fuse-{t:016x}")))
    }
}

/// The injected-fault prefetcher. See the module docs.
#[derive(Debug)]
pub struct FaultPrefetcher {
    config: FaultConfig,
    misses: u64,
}

impl FaultPrefetcher {
    /// Creates the fault with its trigger state at zero.
    pub const fn new(config: FaultConfig) -> Self {
        FaultPrefetcher { config, misses: 0 }
    }

    fn trip(&self) {
        if let Some(fuse) = self.config.fuse_path() {
            if fuse.exists() {
                return; // fuse already blown: behave like NullPrefetcher
            }
            let _ = std::fs::write(fuse, b"blown");
        }
        panic!(
            "injected fault: prefetcher panicked after {} misses",
            self.misses
        );
    }
}

impl Prefetcher for FaultPrefetcher {
    fn name(&self) -> &str {
        "fault"
    }

    fn on_miss(&mut self, _info: &MissInfo, _out: &mut Vec<Action>) {
        self.misses += 1;
        if self.misses > self.config.panic_after_misses {
            self.trip();
        }
    }

    fn on_prefetch_hit(&mut self, _info: &PrefetchHitInfo, _out: &mut Vec<Action>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::{AccessKind, LineAddr, Pc};

    fn miss() -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(1),
            pc: Pc::new(0x1000),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    #[test]
    fn panics_after_trigger_count() {
        let mut p = FaultPrefetcher::new(FaultConfig::panic_after(2));
        let mut out = Vec::new();
        p.on_miss(&miss(), &mut out);
        p.on_miss(&miss(), &mut out);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_miss(&miss(), &mut out)
        }));
        assert!(r.is_err(), "third miss must trip the fault");
        assert!(out.is_empty(), "the fault never issues actions");
    }

    #[test]
    fn blown_fuse_disarms_the_fault() {
        let cfg = FaultConfig::one_shot(0, 0xF0F0_0000 ^ u64::from(std::process::id()));
        let fuse = cfg.fuse_path().unwrap();
        let _ = std::fs::remove_file(&fuse);
        let mut out = Vec::new();

        let mut p = FaultPrefetcher::new(cfg);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.on_miss(&miss(), &mut out)
        }));
        assert!(r.is_err(), "first run must panic");
        assert!(fuse.exists(), "the panic must blow the fuse first");

        let mut p2 = FaultPrefetcher::new(cfg);
        for _ in 0..10 {
            p2.on_miss(&miss(), &mut out);
        }
        assert!(out.is_empty());
        let _ = std::fs::remove_file(&fuse);
    }
}
