//! The Global History Buffer PC/DC baseline (Nesbit & Smith, HPCA 2004).
//!
//! Misses are recorded in a circular *global history buffer*; an *index
//! table* keyed by the missing instruction's PC points at that PC's most
//! recent GHB entry, and entries of the same PC are chained by link
//! pointers. Prediction is *delta correlation*: the last two address
//! deltas of the PC's localized miss stream are looked up in its own
//! history; when the pair occurred before, the deltas that followed are
//! replayed from the current address (depth prefetching, degree 6 in the
//! paper's comparison, §5.3).
//!
//! Two configurations are evaluated in the paper: *GHB small* (16K-entry
//! index table + 16K-entry GHB ≈ 256 KB) and *GHB large* (256K + 256K
//! ≈ 4 MB). Both are on-chip tables: prefetch addresses are produced
//! immediately, with no table-read round-trip.

use ebcp_types::{LineAddr, Pc};
use serde::{Deserialize, Serialize};

use crate::api::{Action, MissInfo, PrefetchHitInfo, Prefetcher};

/// How the index table localizes the miss stream and how predictions
/// are formed (Nesbit & Smith's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GhbIndexing {
    /// PC-localized delta correlation — the variant Perez et al. found
    /// best on SPEC CPU and the one the paper compares against (§5.3).
    PcDc,
    /// Global address correlation: the index table is keyed by the miss
    /// address and prediction replays the *global* miss stream that
    /// followed the address's previous occurrence — the GHB realization
    /// of classic Markov prefetching.
    GlobalAc,
}

/// GHB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GhbConfig {
    /// Index-table entries (direct-mapped by key hash).
    pub index_entries: usize,
    /// Global history buffer entries (circular).
    pub ghb_entries: usize,
    /// Maximum prefetches issued per miss.
    pub degree: usize,
    /// Maximum localized history walked per prediction.
    pub max_history: usize,
    /// Localization/prediction variant.
    pub indexing: GhbIndexing,
}

impl GhbConfig {
    /// The paper's *GHB small*: 16K-entry IT + 16K-entry GHB (≈256 KB).
    pub const fn small() -> Self {
        GhbConfig {
            index_entries: 16 << 10,
            ghb_entries: 16 << 10,
            degree: 6,
            max_history: 64,
            indexing: GhbIndexing::PcDc,
        }
    }

    /// The paper's *GHB large*: 256K-entry IT + 256K-entry GHB (≈4 MB).
    pub const fn large() -> Self {
        GhbConfig {
            index_entries: 256 << 10,
            ghb_entries: 256 << 10,
            ..Self::small()
        }
    }

    /// A G/AC (global address correlation) variant at the *large* size.
    pub const fn global_ac() -> Self {
        GhbConfig {
            indexing: GhbIndexing::GlobalAc,
            ..Self::large()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct GhbEntry {
    line: LineAddr,
    /// Sequence number of the previous entry with the same PC, or
    /// `u64::MAX` for none.
    prev_seq: u64,
}

/// The GHB PC/DC prefetcher.
///
/// # Examples
///
/// ```
/// use ebcp_prefetch::{GhbConfig, GhbPrefetcher, Prefetcher};
/// let p = GhbPrefetcher::new(GhbConfig::large());
/// assert_eq!(p.name(), "ghb");
/// ```
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    config: GhbConfig,
    ghb: Vec<GhbEntry>,
    /// Direct-mapped index table: `(key, seq)`; keys are PCs for PC/DC
    /// and miss line addresses for G/AC.
    index: Vec<Option<(u64, u64)>>,
    next_seq: u64,
    name: String,
}

impl GhbPrefetcher {
    /// Creates a GHB prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if either table size is zero.
    pub fn new(config: GhbConfig) -> Self {
        assert!(config.index_entries > 0 && config.ghb_entries > 0);
        GhbPrefetcher {
            config,
            ghb: vec![
                GhbEntry {
                    line: LineAddr::from_index(0),
                    prev_seq: u64::MAX
                };
                config.ghb_entries
            ],
            index: vec![None; config.index_entries],
            next_seq: 0,
            name: "ghb".to_owned(),
        }
    }

    /// Overrides the display name (e.g. "ghb-small" / "ghb-large").
    #[must_use]
    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.to_owned();
        self
    }

    fn index_slot(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize % self.config.index_entries
    }

    fn seq_valid(&self, seq: u64) -> bool {
        seq != u64::MAX && self.next_seq - seq <= self.ghb.len() as u64 && seq < self.next_seq
    }

    fn record(&mut self, key: u64, line: LineAddr) -> (u64, u64) {
        let slot = self.index_slot(key);
        let prev_seq = match self.index[slot] {
            Some((k, s)) if k == key && self.seq_valid(s) => s,
            _ => u64::MAX,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let n = self.ghb.len() as u64;
        self.ghb[(seq % n) as usize] = GhbEntry { line, prev_seq };
        self.index[slot] = Some((key, seq));
        (seq, prev_seq)
    }

    /// Walks this PC's chain, newest-first, returning addresses in
    /// chronological (oldest-first) order.
    fn localized_history(&self, head_seq: u64) -> Vec<LineAddr> {
        let n = self.ghb.len() as u64;
        let mut rev = Vec::with_capacity(self.config.max_history);
        let mut seq = head_seq;
        while self.seq_valid(seq) && rev.len() < self.config.max_history {
            let e = self.ghb[(seq % n) as usize];
            rev.push(e.line);
            seq = e.prev_seq;
        }
        rev.reverse();
        rev
    }

    fn predict(&self, history: &[LineAddr], out: &mut Vec<Action>) {
        if history.len() < 4 {
            return; // need at least 3 deltas: 2 for the key + 1 to replay
        }
        let deltas: Vec<i64> = history.windows(2).map(|w| w[1].delta_from(w[0])).collect();
        let m = deltas.len();
        let key = (deltas[m - 2], deltas[m - 1]);
        // Search backwards for the previous occurrence of the key pair.
        let mut j = None;
        for cand in (1..m - 2).rev() {
            if (deltas[cand - 1], deltas[cand]) == key {
                j = Some(cand);
                break;
            }
        }
        let Some(j) = j else { return };
        // Replay the deltas that followed the previous occurrence.
        let mut addr = *history.last().expect("nonempty");
        for d in deltas.iter().skip(j + 1).take(self.config.degree) {
            addr = addr.offset(*d);
            out.push(Action::Prefetch {
                line: addr,
                origin: 0,
            });
        }
    }

    /// G/AC prediction: replay the global miss stream that followed the
    /// address's previous occurrence.
    fn predict_global(&self, prev_seq: u64, out: &mut Vec<Action>) {
        if !self.seq_valid(prev_seq) {
            return;
        }
        let n = self.ghb.len() as u64;
        for k in 1..=self.config.degree as u64 {
            let seq = prev_seq + k;
            // Stop at the present (the newest entry is the current miss).
            if !self.seq_valid(seq) || seq + 1 >= self.next_seq {
                break;
            }
            out.push(Action::Prefetch {
                line: self.ghb[(seq % n) as usize].line,
                origin: 0,
            });
        }
    }

    fn handle(&mut self, pc: Pc, line: LineAddr, out: &mut Vec<Action>) {
        match self.config.indexing {
            GhbIndexing::PcDc => {
                let (seq, _) = self.record(pc.get(), line);
                let history = self.localized_history(seq);
                self.predict(&history, out);
            }
            GhbIndexing::GlobalAc => {
                let (_, prev_seq) = self.record(line.index(), line);
                self.predict_global(prev_seq, out);
            }
        }
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_miss(&mut self, info: &MissInfo, out: &mut Vec<Action>) {
        // GHB targets all L2 misses, instruction and load (§5.3).
        self.handle(info.pc, info.line, out);
    }

    fn on_prefetch_hit(&mut self, info: &PrefetchHitInfo, out: &mut Vec<Action>) {
        // Buffer hits continue the localized streams.
        self.handle(info.pc, info.line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::AccessKind;

    fn miss(pc: u64, line: u64) -> MissInfo {
        MissInfo {
            line: LineAddr::from_index(line),
            pc: Pc::new(pc),
            kind: AccessKind::Load,
            epoch_trigger: true,
            now: 0,
            core: 0,
        }
    }

    fn drive(p: &mut GhbPrefetcher, seq: &[(u64, u64)]) -> Vec<u64> {
        let mut pf = Vec::new();
        for &(pc, line) in seq {
            let mut out = Vec::new();
            p.on_miss(&miss(pc, line), &mut out);
            pf.extend(out.iter().filter_map(|a| match a {
                Action::Prefetch { line, .. } => Some(line.index()),
                _ => None,
            }));
        }
        pf
    }

    #[test]
    fn recurring_delta_sequence_is_replayed() {
        let mut p = GhbPrefetcher::new(GhbConfig {
            degree: 3,
            ..GhbConfig::small()
        });
        // PC 0x40 walks the same irregular sequence twice: deltas
        // +5,+12,+3,+5,+12 ... After the second +5,+12 pair, PC/DC should
        // replay +3,+5,+12.
        let seq: Vec<(u64, u64)> = [100, 105, 117, 120, 125, 137]
            .iter()
            .map(|&l| (0x40, l))
            .collect();
        let pf = drive(&mut p, &seq);
        assert_eq!(pf, vec![140, 145, 157]);
    }

    #[test]
    fn no_prediction_without_recurrence() {
        let mut p = GhbPrefetcher::new(GhbConfig::small());
        let seq: Vec<(u64, u64)> = [100, 200, 350, 520, 900, 1400]
            .iter()
            .map(|&l| (0x40, l))
            .collect();
        let pf = drive(&mut p, &seq);
        assert!(pf.is_empty(), "unique deltas must not predict: {pf:?}");
    }

    #[test]
    fn streams_are_localized_per_pc() {
        let mut p = GhbPrefetcher::new(GhbConfig {
            degree: 2,
            ..GhbConfig::small()
        });
        // Two PCs with interleaved accesses; each repeats its own delta
        // pattern. Predictions must follow the per-PC pattern.
        let mut seq = Vec::new();
        for rep in 0..5u64 {
            seq.push((0x40, 1000 + rep * 10));
            seq.push((0x80, 500_000 + rep * 7));
        }
        let pf = drive(&mut p, &seq);
        // PC 0x40 at 1040: delta pair (10,10) recurs, replay => 1050;
        // PC 0x80 at 500028: pair (7,7) recurs, replay => 500035.
        assert!(pf.contains(&1050), "{pf:?}");
        assert!(pf.contains(&(500_000 + 35)), "{pf:?}");
    }

    #[test]
    fn small_ghb_forgets_long_histories() {
        let cfg = GhbConfig {
            index_entries: 64,
            ghb_entries: 64,
            degree: 4,
            ..GhbConfig::small()
        };
        let mut p = GhbPrefetcher::new(cfg);
        // First pass of PC 0x40's pattern.
        drive(&mut p, &[(0x40, 100), (0x40, 105), (0x40, 117)]);
        // Flood with other PCs to wrap the 64-entry GHB.
        let flood: Vec<(u64, u64)> = (0..100).map(|i| (0x1000 + i * 8, 50_000 + i * 3)).collect();
        drive(&mut p, &flood);
        // Second pass: the chain is gone, so no replay is possible.
        let pf = drive(&mut p, &[(0x40, 200), (0x40, 205), (0x40, 217)]);
        assert!(
            pf.is_empty(),
            "history should have been overwritten: {pf:?}"
        );
    }

    #[test]
    fn large_ghb_survives_the_same_flood() {
        let cfg = GhbConfig {
            index_entries: 4096,
            ghb_entries: 4096,
            degree: 4,
            ..GhbConfig::small()
        };
        let mut p = GhbPrefetcher::new(cfg);
        drive(&mut p, &[(0x40, 100), (0x40, 105), (0x40, 117)]);
        let flood: Vec<(u64, u64)> = (0..100).map(|i| (0x1000 + i * 8, 50_000 + i * 3)).collect();
        drive(&mut p, &flood);
        let pf = drive(&mut p, &[(0x40, 200), (0x40, 205), (0x40, 217)]);
        // Deltas now: 100->105->117 (5,12), gap, 200(-17?),205,217: the
        // pair (5,12) recurs, replaying what followed historically.
        assert!(!pf.is_empty(), "large GHB should retain the chain");
    }

    #[test]
    fn degree_bounds_prefetches_per_miss() {
        let mut p = GhbPrefetcher::new(GhbConfig {
            degree: 2,
            ..GhbConfig::small()
        });
        // Long repeated unit-stride run: every miss replays at most 2.
        let seq: Vec<(u64, u64)> = (0..20).map(|i| (0x40, 100 + i)).collect();
        for &(pc, line) in &seq {
            let mut out = Vec::new();
            p.on_miss(&miss(pc, line), &mut out);
            assert!(out.len() <= 2);
        }
    }

    #[test]
    fn global_ac_replays_global_successors() {
        let mut p = GhbPrefetcher::new(GhbConfig {
            degree: 3,
            ..GhbConfig::global_ac()
        });
        // Global miss stream: A B C D, then A again. G/AC must replay
        // B, C, D regardless of PCs or deltas.
        let pf = drive(&mut p, &[(1, 100), (2, 777), (3, 321), (4, 555), (1, 100)]);
        assert_eq!(pf, vec![777, 321, 555]);
    }

    #[test]
    fn global_ac_stops_at_present() {
        let mut p = GhbPrefetcher::new(GhbConfig {
            degree: 6,
            ..GhbConfig::global_ac()
        });
        // A X, then A again: only one successor exists.
        let pf = drive(&mut p, &[(1, 100), (2, 777), (1, 100)]);
        assert_eq!(pf, vec![777]);
    }

    #[test]
    fn index_collisions_break_chains_silently() {
        // One-slot index table: every PC collides.
        let cfg = GhbConfig {
            index_entries: 1,
            ghb_entries: 1024,
            degree: 4,
            ..GhbConfig::small()
        };
        let mut p = GhbPrefetcher::new(cfg);
        let mut seq = Vec::new();
        for rep in 0..4u64 {
            seq.push((0x40, 100 + rep * 5));
            seq.push((0x80, 900 + rep * 9));
        }
        // Interleaved PCs on one slot: chains never exceed length 1, so
        // no predictions — but also no panics or cross-PC pollution.
        let pf = drive(&mut p, &seq);
        assert!(pf.is_empty());
    }
}
