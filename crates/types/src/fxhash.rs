//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 with a per-process
//! random key. That buys HashDoS resistance the simulator does not need —
//! every key on the per-miss path ([`LineAddr`](crate::LineAddr) of an
//! in-flight prefetch, an MSHR tag, a correlation-table slot index) is
//! produced by the simulation itself, never by an adversary — and costs a
//! full SipHash compression per lookup plus nondeterministic iteration
//! order between processes.
//!
//! [`FxHasher`] is the multiply-rotate hash used by rustc (`rustc-hash`):
//! one rotate, one xor and one multiply per 8-byte word, no allocation,
//! no random state. Hashes are stable across processes and platforms for
//! the integer-shaped keys the simulator uses, which keeps replay
//! deterministic even if a container ever iterates.
//!
//! # Examples
//!
//! ```
//! use ebcp_types::fxhash::FxHashMap;
//! use ebcp_types::LineAddr;
//!
//! let mut inflight: FxHashMap<LineAddr, u64> = FxHashMap::default();
//! inflight.insert(LineAddr::from_index(42), 1000);
//! assert_eq!(inflight.get(&LineAddr::from_index(42)), Some(&1000));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash family (a close relative of the Firefox
/// and rustc hashers): an odd 64-bit constant with well-mixed high bits.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Bits to rotate between words; spreads consecutive small integers
/// across the table even when only a few low bits differ.
const ROTATE: u32 = 5;

/// The Fx word-at-a-time hasher. See the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Word-at-a-time over the slice; the tail is padded into one
        // final word. Hot-path keys are u64 newtypes and never take
        // this path, but derived `Hash` impls for mixed structs do.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }
}

/// Zero-state builder for [`FxHasher`]: every hasher starts identical,
/// so hashes — and thus map layouts — are reproducible run to run.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`]. Drop-in for `std::HashMap` on
/// simulator-internal keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_u64(x: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(x);
        h.finish()
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_u64(0xdead_beef), hash_u64(0xdead_beef));
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
    }

    #[test]
    fn distinct_inputs_hash_apart() {
        // Consecutive small integers (the common key shape: line
        // indices, table slots) must not collide.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(hash_u64(i)), "collision at {i}");
        }
    }

    #[test]
    fn low_bits_spread_for_consecutive_keys() {
        // HashMap uses the high bits of the hash for bucket selection
        // via multiplication, but check low-7-bit spread anyway: over
        // 1024 consecutive keys every 128-bucket slot should be hit.
        let mut buckets = [0u32; 128];
        for i in 0..1024u64 {
            buckets[(hash_u64(i) & 127) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 0), "unused low-bit bucket");
    }

    #[test]
    fn byte_slices_tail_disambiguates_length() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip_with_line_addr_keys() {
        let mut m: FxHashMap<crate::LineAddr, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(crate::LineAddr::from_index(i), i as u32);
        }
        for i in 0..1000 {
            assert_eq!(m[&crate::LineAddr::from_index(i)], i as u32);
        }
    }
}
