//! Fundamental value types shared by every crate of the EBCP reproduction.
//!
//! This crate defines the vocabulary of the simulated machine:
//!
//! * [`Addr`], [`LineAddr`] and [`Pc`] — strongly typed physical addresses,
//!   so byte addresses, cache-line addresses and program counters cannot be
//!   confused (the prefetcher literature mixes all three freely; the type
//!   system keeps us honest).
//! * [`Cycle`] — simulation time, in core clock cycles.
//! * [`AccessKind`] and [`MemClass`] — what an access *is* and which
//!   priority class its memory traffic travels in.
//! * a small statistics toolkit ([`stats::Counter`], [`stats::Ratio`],
//!   [`stats::Histogram`]) used by the memory system and the simulator.
//! * [`FxHashMap`]/[`FxHashSet`] — deterministic, no-alloc fast hashing
//!   for the simulator's per-miss-path tables (see [`fxhash`]).
//!
//! # Examples
//!
//! ```
//! use ebcp_types::{Addr, LineAddr, LINE_BYTES};
//!
//! let a = Addr::new(0x1_0040);
//! let line = a.line();
//! assert_eq!(line.base(), Addr::new(0x1_0040 / LINE_BYTES * LINE_BYTES));
//! assert_eq!(line.next(), LineAddr::containing(Addr::new(0x1_0080)));
//! ```

pub mod addr;
pub mod fxhash;
pub mod kind;
pub mod stats;

pub use addr::{Addr, LineAddr, Pc, LINE_BYTES, LINE_SHIFT};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use kind::{AccessKind, MemClass};

/// Simulation time in core clock cycles.
///
/// The default machine runs at 3 GHz, so one [`Cycle`] is 1/3 ns. All
/// latencies in the workspace (cache hit times, the 500-cycle memory
/// latency, bus transfer times) are expressed in this unit.
pub type Cycle = u64;
