//! A small statistics toolkit: counters, ratios, and log-2 histograms.
//!
//! Every component of the simulator exposes counters built from these
//! primitives; the harness in `ebcp-bench` turns them into the paper's
//! tables and figures.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ebcp_types::stats::Counter;
/// let mut hits = Counter::new();
/// hits.incr();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// This counter per 1000 units of `denom` (e.g. misses per 1000
    /// retired instructions, the unit of Table 1).
    pub fn per_kilo(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 * 1000.0 / denom as f64
        }
    }

    /// This counter as a fraction of `denom` (0.0 when `denom` is zero).
    pub fn frac_of(self, denom: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 / denom as f64
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl From<Counter> for u64 {
    fn from(c: Counter) -> u64 {
        c.0
    }
}

/// A numerator/denominator pair that formats as a percentage.
///
/// Used for coverage and accuracy (Figure 5): coverage = averted misses /
/// baseline misses, accuracy = useful prefetches / issued prefetches.
///
/// # Examples
///
/// ```
/// use ebcp_types::stats::Ratio;
/// let r = Ratio::new(1, 4);
/// assert_eq!(r.value(), 0.25);
/// assert_eq!(r.to_string(), "25.0%");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// Creates a ratio.
    pub const fn new(num: u64, den: u64) -> Self {
        Ratio { num, den }
    }

    /// Numerator.
    pub const fn num(self) -> u64 {
        self.num
    }

    /// Denominator.
    pub const fn den(self) -> u64 {
        self.den
    }

    /// The ratio as a float, 0.0 when the denominator is zero.
    pub fn value(self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            self.num as f64 / self.den as f64
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.value() * 100.0)
    }
}

/// A power-of-two bucketed histogram for distributions like
/// misses-per-epoch or queueing delay.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)` for `i >= 1`; bucket 0
/// holds exact zeros... more precisely, a sample `v` lands in bucket
/// `ceil(log2(v + 1))` capped at the last bucket.
///
/// # Examples
///
/// ```
/// use ebcp_types::stats::Histogram;
/// let mut h = Histogram::new(8);
/// h.record(0);
/// h.record(1);
/// h.record(3);
/// assert_eq!(h.samples(), 3);
/// assert_eq!(h.bucket_count(0), 1); // the zero
/// assert_eq!(h.bucket_count(1), 1); // the one
/// assert_eq!(h.bucket_count(2), 1); // 2..=3
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    samples: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` power-of-two buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero.
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            buckets: vec![0; buckets],
            samples: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_of(v).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.samples += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    fn bucket_of(v: u64) -> usize {
        match v {
            0 => 0,
            _ => (64 - (v).leading_zeros()) as usize,
        }
    }

    /// Number of recorded samples.
    pub const fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Largest recorded sample.
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Count in bucket `i` (0 when out of range).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(16)
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hist(n={}, mean={:.2}, max={})",
            self.samples,
            self.mean(),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(u64::from(c), 10);
    }

    #[test]
    fn counter_per_kilo_and_frac() {
        let mut c = Counter::new();
        c.add(5);
        assert_eq!(c.per_kilo(1000), 5.0);
        assert_eq!(c.per_kilo(0), 0.0);
        assert_eq!(c.frac_of(10), 0.5);
        assert_eq!(c.frac_of(0), 0.0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(Ratio::new(3, 0).value(), 0.0);
        assert_eq!(Ratio::new(3, 4).value(), 0.75);
    }

    #[test]
    fn ratio_display_is_percent() {
        assert_eq!(Ratio::new(1, 2).to_string(), "50.0%");
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new(8);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2,3
        assert_eq!(h.bucket_count(3), 2); // 4,7
        assert_eq!(h.bucket_count(4), 1); // 8
        assert_eq!(h.bucket_count(7), 1); // 1000 capped to last bucket
        assert_eq!(h.samples(), 8);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(4);
        h.record(2);
        h.record(4);
        assert_eq!(h.mean(), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn histogram_default_is_usable() {
        let mut h = Histogram::default();
        h.record(5);
        assert_eq!(h.samples(), 1);
        assert!(!h.to_string().is_empty());
    }
}
