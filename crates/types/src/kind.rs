//! Access kinds and memory-traffic priority classes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// What a memory access *is*, from the core's point of view.
///
/// The distinction matters throughout the paper: the prefetcher trains on
/// instruction and load misses only (stores are excluded under weak
/// consistency, §3.4.2), several baseline prefetchers cannot see
/// instruction misses at all, and Table 1 / Figure 5 report instruction
/// and load miss rates separately.
///
/// # Examples
///
/// ```
/// use ebcp_types::AccessKind;
/// assert!(AccessKind::Load.trains_prefetcher());
/// assert!(AccessKind::InstrFetch.trains_prefetcher());
/// assert!(!AccessKind::Store.trains_prefetcher());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An instruction fetch.
    InstrFetch,
    /// A data load.
    Load,
    /// A data store (write-allocate; never recorded by the prefetcher).
    Store,
}

impl AccessKind {
    /// Whether misses of this kind are recorded in the EMAB and may
    /// trigger correlation-table lookups (§3.4.2: instruction and load
    /// misses only).
    pub const fn trains_prefetcher(self) -> bool {
        matches!(self, AccessKind::InstrFetch | AccessKind::Load)
    }

    /// Whether this is a data access (load or store).
    pub const fn is_data(self) -> bool {
        matches!(self, AccessKind::Load | AccessKind::Store)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessKind::InstrFetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        };
        f.write_str(s)
    }
}

/// Priority class of a main-memory request.
///
/// §3.4.4 and §4.4: demand accesses always win; prefetches and
/// correlation-table traffic are only serviced with spare bandwidth and
/// must never delay a demand access. The bus model in `ebcp-mem` enforces
/// exactly this ordering.
///
/// `Demand < Prefetch < TableRead < TableWrite` in *priority-number*
/// terms — smaller discriminant = more urgent. [`MemClass::is_demand`]
/// is the only distinction the timing model needs; the finer classes
/// exist for bandwidth accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemClass {
    /// A demand miss (instruction fetch, load, or store write-allocate).
    Demand,
    /// A prefetch issued by any prefetcher.
    Prefetch,
    /// A correlation-table read (EBCP / Solihin main-memory tables).
    TableRead,
    /// A correlation-table write (learning updates, LRU updates).
    TableWrite,
    /// A dirty-line writeback from the L2.
    Writeback,
}

impl MemClass {
    /// Whether this request belongs to the demand class (never delayed by
    /// lower-priority traffic, never dropped).
    pub const fn is_demand(self) -> bool {
        matches!(self, MemClass::Demand)
    }

    /// Whether this request travels on the read bus (`true`) or the write
    /// bus (`false`).
    ///
    /// Table reads return a 64 B entry over the read bus; table writes and
    /// writebacks use the write bus, as do store data transfers.
    pub const fn uses_read_bus(self) -> bool {
        matches!(
            self,
            MemClass::Demand | MemClass::Prefetch | MemClass::TableRead
        )
    }

    /// All classes, for stats iteration.
    pub const ALL: [MemClass; 5] = [
        MemClass::Demand,
        MemClass::Prefetch,
        MemClass::TableRead,
        MemClass::TableWrite,
        MemClass::Writeback,
    ];
}

impl fmt::Display for MemClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemClass::Demand => "demand",
            MemClass::Prefetch => "prefetch",
            MemClass::TableRead => "table-read",
            MemClass::TableWrite => "table-write",
            MemClass::Writeback => "writeback",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_kinds_match_paper() {
        assert!(AccessKind::InstrFetch.trains_prefetcher());
        assert!(AccessKind::Load.trains_prefetcher());
        assert!(!AccessKind::Store.trains_prefetcher());
    }

    #[test]
    fn data_kinds() {
        assert!(!AccessKind::InstrFetch.is_data());
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
    }

    #[test]
    fn demand_class_priority() {
        assert!(MemClass::Demand.is_demand());
        for c in [
            MemClass::Prefetch,
            MemClass::TableRead,
            MemClass::TableWrite,
            MemClass::Writeback,
        ] {
            assert!(!c.is_demand());
            assert!(MemClass::Demand < c, "demand must sort first");
        }
    }

    #[test]
    fn bus_selection() {
        assert!(MemClass::Demand.uses_read_bus());
        assert!(MemClass::Prefetch.uses_read_bus());
        assert!(MemClass::TableRead.uses_read_bus());
        assert!(!MemClass::TableWrite.uses_read_bus());
        assert!(!MemClass::Writeback.uses_read_bus());
    }

    #[test]
    fn all_classes_enumerated_once() {
        let mut seen = std::collections::HashSet::new();
        for c in MemClass::ALL {
            assert!(seen.insert(c));
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn displays_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for c in MemClass::ALL {
            assert!(seen.insert(c.to_string()));
        }
    }
}
