//! Strongly typed physical addresses.
//!
//! The simulated machine uses 64-byte cache lines everywhere (L1, L2 and
//! the unit of memory transfer), matching the default processor
//! configuration in §4.4 of the paper. [`LINE_BYTES`]/[`LINE_SHIFT`] are
//! compile-time constants: the paper never varies the line size and fixing
//! it lets [`LineAddr`] be a plain newtype with cheap arithmetic.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Cache-line size in bytes (64 B, §4.4 of the paper).
pub const LINE_BYTES: u64 = 64;

/// `log2(LINE_BYTES)`.
pub const LINE_SHIFT: u32 = 6;

/// A physical byte address.
///
/// The on-chip prefetcher control operates on physical addresses
/// (§3.4.1), so the whole reproduction does too — there is no address
/// translation anywhere.
///
/// # Examples
///
/// ```
/// use ebcp_types::Addr;
/// let a = Addr::new(0x80);
/// assert_eq!(a.get(), 0x80);
/// assert_eq!(a.line().index(), 2);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(a: u64) -> Self {
        Addr(a)
    }

    /// Returns the raw byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this byte.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Byte offset within the containing cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Returns the address advanced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(a: u64) -> Self {
        Addr(a)
    }
}

/// A cache-line address: a byte address divided by [`LINE_BYTES`].
///
/// This is the currency of the entire memory system — caches, MSHRs, the
/// prefetch buffer, prefetch requests and correlation-table contents all
/// deal in whole lines. Keeping it distinct from [`Addr`] prevents the
/// classic off-by-`LINE_SHIFT` bug.
///
/// # Examples
///
/// ```
/// use ebcp_types::{Addr, LineAddr};
/// let l = LineAddr::containing(Addr::new(0x1234));
/// assert_eq!(l.base().get(), 0x1200);
/// assert_eq!(l.next().index(), l.index() + 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line *index* (byte address >> 6).
    pub const fn from_index(idx: u64) -> Self {
        LineAddr(idx)
    }

    /// Returns the line containing byte address `a`.
    pub const fn containing(a: Addr) -> Self {
        a.line()
    }

    /// The line index (byte address of the line divided by the line size).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The first byte address of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The immediately following line.
    #[must_use]
    pub const fn next(self) -> Self {
        LineAddr(self.0.wrapping_add(1))
    }

    /// The line `delta` lines away (`delta` may be negative).
    #[must_use]
    pub const fn offset(self, delta: i64) -> Self {
        LineAddr(self.0.wrapping_add(delta as u64))
    }

    /// Signed distance in lines from `other` to `self`.
    pub const fn delta_from(self, other: LineAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

/// A program counter (instruction byte address).
///
/// Instruction misses index the correlation table by their *physical PC*
/// (§3.4.3), and PC-indexed prefetchers (GHB PC/DC, SMS) key their tables
/// on it.
///
/// # Examples
///
/// ```
/// use ebcp_types::Pc;
/// let pc = Pc::new(0x4000_0000);
/// assert_eq!(pc.advance(4).get(), 0x4000_0004);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter.
    pub const fn new(pc: u64) -> Self {
        Pc(pc)
    }

    /// Returns the raw value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the PC advanced by `bytes`.
    #[must_use]
    pub const fn advance(self, bytes: u64) -> Self {
        Pc(self.0.wrapping_add(bytes))
    }

    /// The instruction-cache line containing this PC.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Views the PC as a plain byte address.
    pub const fn as_addr(self) -> Addr {
        Addr(self.0)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(pc: u64) -> Self {
        Pc(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_byte_address() {
        assert_eq!(Addr::new(0).line(), LineAddr::from_index(0));
        assert_eq!(Addr::new(63).line(), LineAddr::from_index(0));
        assert_eq!(Addr::new(64).line(), LineAddr::from_index(1));
        assert_eq!(Addr::new(0x1FFF).line(), LineAddr::from_index(0x7F));
    }

    #[test]
    fn line_base_round_trips() {
        let l = LineAddr::from_index(42);
        assert_eq!(l.base().line(), l);
        assert_eq!(l.base().line_offset(), 0);
    }

    #[test]
    fn line_offsets_and_deltas() {
        let l = LineAddr::from_index(100);
        assert_eq!(l.offset(5).index(), 105);
        assert_eq!(l.offset(-5).index(), 95);
        assert_eq!(l.offset(5).delta_from(l), 5);
        assert_eq!(l.offset(-7).delta_from(l), -7);
    }

    #[test]
    fn addr_line_offset() {
        assert_eq!(Addr::new(0x43).line_offset(), 3);
        assert_eq!(Addr::new(0x40).line_offset(), 0);
    }

    #[test]
    fn pc_advance_and_line() {
        let pc = Pc::new(0x1000);
        assert_eq!(pc.advance(4).get(), 0x1004);
        assert_eq!(pc.line(), LineAddr::from_index(0x40));
        assert_eq!(pc.as_addr(), Addr::new(0x1000));
    }

    #[test]
    fn display_forms_are_nonempty() {
        assert!(!format!("{}", Addr::new(0)).is_empty());
        assert!(!format!("{}", LineAddr::from_index(0)).is_empty());
        assert!(!format!("{}", Pc::new(0)).is_empty());
    }

    #[test]
    fn next_line_is_adjacent() {
        let l = LineAddr::from_index(7);
        assert_eq!(l.next().delta_from(l), 1);
    }
}
