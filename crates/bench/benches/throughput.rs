//! Throughput bench: simulated Minst/s per workload × prefetcher at
//! quick scale, writing `BENCH_throughput.json` next to the other
//! benchmark outputs. Plain `main` (not Criterion) because each cell is
//! a single deliberately long timed run, and the JSON document — not a
//! statistical estimate — is the deliverable the CI gate consumes.

use ebcp_bench::{throughput, Scale};

fn main() {
    // `cargo bench` passes `--bench`; ignore any harness-style flags.
    let scale = Scale::quick();
    let rows = throughput::measure(scale);
    print!("{}", throughput::render(&rows));
    let sweep = throughput::measure_sweep(scale);
    println!();
    print!("{}", throughput::render_sweep(&sweep));
    let doc = throughput::to_json(scale, &rows, &sweep);
    let out = std::path::Path::new("target/ebcp-results");
    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("warning: could not create {}: {e}", out.display());
        return;
    }
    let path = out.join("BENCH_throughput.json");
    match std::fs::write(&path, doc.to_json_pretty()) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
