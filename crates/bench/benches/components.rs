//! Component microbenchmarks: cache, prefetch buffer, correlation
//! table, trace generation and raw engine throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ebcp_core::CorrelationTable;
use ebcp_mem::{CacheGeometry, PrefetchBuffer, SetAssocCache};
use ebcp_prefetch::NullPrefetcher;
use ebcp_sim::{Engine, SimConfig};
use ebcp_trace::{TraceGenerator, WorkloadSpec};
use ebcp_types::LineAddr;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("l2_access_fill_mix", |b| {
        let mut cache = SetAssocCache::new(CacheGeometry::new(128 << 10, 4));
        let mut x: u64 = 1;
        b.iter(|| {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let line = LineAddr::from_index(x >> 48);
                if !cache.access(line) {
                    cache.fill(line, x & 1 == 0);
                }
            }
        });
    });
    g.finish();
}

fn bench_prefetch_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetch_buffer");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("insert_consume", |b| {
        let mut pb = PrefetchBuffer::new(64, 4);
        let mut x: u64 = 1;
        b.iter(|| {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let line = LineAddr::from_index(x >> 52);
                if x & 1 == 0 {
                    pb.insert(line, x);
                } else {
                    let _ = pb.lookup_consume(line);
                }
            }
        });
    });
    g.finish();
}

fn bench_correlation_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("correlation_table");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("learn_lookup", |b| {
        let mut t = CorrelationTable::new(1 << 18, 8);
        let mut x: u64 = 1;
        b.iter(|| {
            for _ in 0..1_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = LineAddr::from_index((x >> 50) + 0x1000);
                let addrs: Vec<LineAddr> = (0..4)
                    .map(|k| LineAddr::from_index((x >> 40) + k))
                    .collect();
                t.learn(key, &addrs);
                let _ = t.lookup(key);
            }
        });
    });
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generator");
    let spec = WorkloadSpec::database().scaled(1, 16);
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("database_100k_records", |b| {
        b.iter_batched(
            || TraceGenerator::new(&spec, 1),
            |mut gen| gen.collect_n(100_000),
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let spec = WorkloadSpec::database().scaled(1, 16);
    let trace: Vec<_> = TraceGenerator::new(&spec, 1).take(200_000).collect();
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("database_200k_insts_null_prefetcher", |b| {
        b.iter(|| {
            let mut engine = Engine::new(SimConfig::scaled_down(16), Box::new(NullPrefetcher));
            for rec in &trace {
                engine.step(rec);
            }
            engine.cycle()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache, bench_prefetch_buffer, bench_correlation_table, bench_generator, bench_engine
}
criterion_main!(benches);
