//! Figure 6 bench: the correlation-table-size sweep (degree 8), timed at
//! the 1M-paper-equivalent point; the series prints once.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ebcp_core::EbcpConfig;
use ebcp_sim::{PrefetcherSpec, SimConfig};
use ebcp_trace::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_table_size");
    g.sample_size(10);
    for preset in WorkloadSpec::all_presets() {
        let name = preset.name.clone();
        let sim = SimConfig::scaled_down(common::DEN).with_pbuf_entries(1024);
        let prepared = common::prepare(preset, Some(sim));
        let base = prepared.run(&PrefetcherSpec::None);
        print!("fig6[{name}]:");
        for full in [8u64 << 20, 1 << 20, 256 << 10, 64 << 10] {
            let cfg = EbcpConfig::idealized()
                .with_degree(8)
                .with_table_entries(common::entries(full));
            let r = prepared.run(&PrefetcherSpec::Ebcp(cfg));
            print!(" {}k={:.1}%", full >> 10, r.improvement_over(&base) * 100.0);
        }
        println!(" (entries are paper-equivalent / {})", common::DEN);
        let tuned_size = EbcpConfig::idealized()
            .with_degree(8)
            .with_table_entries(common::entries(1 << 20));
        g.bench_function(&name, |b| {
            b.iter(|| {
                prepared
                    .run(&PrefetcherSpec::Ebcp(tuned_size))
                    .improvement_over(&base)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
