//! Figure 8 bench: bandwidth sensitivity — times the degree-8 run at the
//! lowest bandwidth; the degree × bandwidth matrix prints once.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ebcp_core::EbcpConfig;
use ebcp_sim::{PrefetcherSpec, SimConfig};
use ebcp_trace::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_bandwidth");
    g.sample_size(10);
    for preset in [WorkloadSpec::database(), WorkloadSpec::specjbb2005()] {
        let name = preset.name.clone();
        let idealized = EbcpConfig::idealized().with_table_entries(common::entries(8 << 20));
        for (num, den, label) in [(1u64, 3u64, "3.2"), (1, 1, "9.6")] {
            let sim = SimConfig::scaled_down(common::DEN)
                .with_bandwidth(num, den)
                .with_pbuf_entries(1024);
            let prepared = common::prepare(preset.clone(), Some(sim));
            let base = prepared.run(&PrefetcherSpec::None);
            print!("fig8[{name} @ {label} GB/s]:");
            for degree in [4usize, 8, 16, 32] {
                let r = prepared.run(&PrefetcherSpec::Ebcp(idealized.with_degree(degree)));
                print!(" d{degree}={:.1}%", r.improvement_over(&base) * 100.0);
            }
            println!();
            if label == "3.2" {
                g.bench_function(format!("{name}_at_3.2GBs"), |b| {
                    b.iter(|| {
                        prepared
                            .run(&PrefetcherSpec::Ebcp(idealized.with_degree(8)))
                            .improvement_over(&base)
                    })
                });
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
