//! Figure 4 bench: the prefetch-degree sweep point at degree 8 on the
//! idealized table, timed per workload; the whole series prints once.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ebcp_core::EbcpConfig;
use ebcp_sim::{PrefetcherSpec, SimConfig};
use ebcp_trace::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_degree_sweep");
    g.sample_size(10);
    for preset in WorkloadSpec::all_presets() {
        let name = preset.name.clone();
        let sim = SimConfig::scaled_down(common::DEN).with_pbuf_entries(1024);
        let prepared = common::prepare(preset, Some(sim));
        let base = prepared.run(&PrefetcherSpec::None);
        let idealized = EbcpConfig::idealized().with_table_entries(common::entries(8 << 20));
        print!("fig4[{name}]:");
        for degree in [1usize, 2, 4, 8, 16, 32] {
            let r = prepared.run(&PrefetcherSpec::Ebcp(idealized.with_degree(degree)));
            print!(" d{degree}={:.1}%", r.improvement_over(&base) * 100.0);
        }
        println!();
        g.bench_function(&name, |b| {
            b.iter(|| {
                prepared
                    .run(&PrefetcherSpec::Ebcp(idealized.with_degree(8)))
                    .improvement_over(&base)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
