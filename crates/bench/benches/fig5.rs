//! Figure 5 bench: EPI reduction / coverage / accuracy at the tuned
//! degree, one bench per workload; the series prints once.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ebcp_core::EbcpConfig;
use ebcp_sim::{PrefetcherSpec, SimConfig};
use ebcp_trace::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_secondary_metrics");
    g.sample_size(10);
    for preset in WorkloadSpec::all_presets() {
        let name = preset.name.clone();
        let sim = SimConfig::scaled_down(common::DEN).with_pbuf_entries(1024);
        let prepared = common::prepare(preset, Some(sim));
        let base = prepared.run(&PrefetcherSpec::None);
        let idealized = EbcpConfig::idealized().with_table_entries(common::entries(8 << 20));
        for degree in [2usize, 8, 32] {
            let r = prepared.run(&PrefetcherSpec::Ebcp(idealized.with_degree(degree)));
            println!(
                "fig5[{name}] d{degree}: epiRed={:.1}% cov={:.1}% acc={:.1}% instMR={:.2} loadMR={:.2}",
                r.epi_reduction_over(&base) * 100.0,
                r.coverage() * 100.0,
                r.accuracy() * 100.0,
                r.inst_mr(),
                r.load_mr()
            );
        }
        g.bench_function(&name, |b| {
            b.iter(|| {
                prepared
                    .run(&PrefetcherSpec::Ebcp(idealized.with_degree(8)))
                    .coverage()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
