#![allow(dead_code)]

//! Shared support for the per-figure Criterion benches: a quick-scale
//! run environment so each bench iteration is one full (small)
//! simulation.

use std::sync::Arc;

use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig, SimResult};
use ebcp_trace::{TraceRecord, WorkloadSpec};

/// Scale denominator used by all benches.
pub const DEN: u64 = 16;

/// A prepared workload: spec + materialized trace.
pub struct Prepared {
    pub spec: RunSpec,
    pub trace: Arc<Vec<TraceRecord>>,
}

/// Prepares a quick-scale run for `preset` with an optional machine
/// override.
pub fn prepare(preset: WorkloadSpec, sim: Option<SimConfig>) -> Prepared {
    let workload = preset.scaled(1, DEN as usize);
    let interval = workload.recurrence_interval();
    let spec = RunSpec {
        workload,
        seed: 11,
        warmup_insts: interval * 3 / 2,
        measure_insts: interval / 2,
        sim: sim.unwrap_or_else(|| SimConfig::scaled_down(DEN)),
    };
    let trace = spec.materialize();
    Prepared { spec, trace }
}

impl Prepared {
    /// Runs one prefetcher over the prepared trace.
    pub fn run(&self, pf: &PrefetcherSpec) -> SimResult {
        self.spec.run_on(&self.trace, pf)
    }
}

/// Scaled table entries at the bench scale.
pub fn entries(full: u64) -> u64 {
    (full / DEN).max(1 << 10)
}
