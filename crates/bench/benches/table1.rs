//! Table 1 bench: times the baseline characterization run for each
//! workload at bench scale, and prints the measured statistics once.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ebcp_sim::PrefetcherSpec;
use ebcp_trace::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for preset in WorkloadSpec::all_presets() {
        let name = preset.name.clone();
        let prepared = common::prepare(preset, None);
        let r = prepared.run(&PrefetcherSpec::None);
        println!(
            "table1[{name}]: cpi={:.3} epi/1k={:.2} instMR={:.2} loadMR={:.2}",
            r.cpi(),
            r.epi_per_kilo(),
            r.inst_mr(),
            r.load_mr()
        );
        g.bench_function(&name, |b| {
            b.iter(|| prepared.run(&PrefetcherSpec::None).cpi())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
