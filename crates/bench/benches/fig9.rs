//! Figure 9 bench: the full prefetcher comparison — times the EBCP run
//! per workload; the comparison table prints once.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ebcp_core::EbcpConfig;
use ebcp_prefetch::{BaselineConfig, GhbConfig, SolihinConfig};
use ebcp_sim::PrefetcherSpec;
use ebcp_trace::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_comparison");
    g.sample_size(10);
    for preset in WorkloadSpec::all_presets() {
        let name = preset.name.clone();
        let prepared = common::prepare(preset, None);
        let base = prepared.run(&PrefetcherSpec::None);
        let entries = common::entries(1 << 20);
        let contenders: Vec<PrefetcherSpec> = vec![
            PrefetcherSpec::baseline(
                "ghb-large",
                BaselineConfig::Ghb(GhbConfig {
                    index_entries: common::entries(256 << 10) as usize,
                    ghb_entries: common::entries(256 << 10) as usize,
                    ..GhbConfig::large()
                }),
            ),
            PrefetcherSpec::baseline(
                "solihin-6,1",
                BaselineConfig::Solihin(SolihinConfig {
                    entries,
                    ..SolihinConfig::deep()
                }),
            ),
            PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(entries)),
            PrefetcherSpec::Ebcp(EbcpConfig::comparison_minus().with_table_entries(entries)),
        ];
        print!("fig9[{name}]:");
        for pf in &contenders {
            let r = prepared.run(pf);
            print!(" {}={:.1}%", pf.name(), r.improvement_over(&base) * 100.0);
        }
        println!();
        let ebcp = PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(entries));
        g.bench_function(&name, |b| {
            b.iter(|| prepared.run(&ebcp).improvement_over(&base))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
