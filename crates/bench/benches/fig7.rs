//! Figure 7 bench: the prefetch-buffer sweep at the tuned configuration,
//! timed at the 64-entry (tuned) point; the series prints once.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ebcp_core::EbcpConfig;
use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
use ebcp_trace::WorkloadSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_buffer_size");
    g.sample_size(10);
    for preset in WorkloadSpec::all_presets() {
        let name = preset.name.clone();
        let prepared = common::prepare(preset, None);
        let base = prepared.run(&PrefetcherSpec::None);
        let tuned = EbcpConfig::tuned().with_table_entries(common::entries(1 << 20));
        print!("fig7[{name}]:");
        for buf in [1024usize, 256, 64, 16] {
            let spec = RunSpec {
                sim: SimConfig::scaled_down(common::DEN).with_pbuf_entries(buf),
                ..prepared.spec.clone()
            };
            let r = spec.run_on(&prepared.trace, &PrefetcherSpec::Ebcp(tuned));
            print!(" {buf}={:.1}%", r.improvement_over(&base) * 100.0);
        }
        println!();
        g.bench_function(&name, |b| {
            b.iter(|| {
                prepared
                    .run(&PrefetcherSpec::Ebcp(tuned))
                    .improvement_over(&base)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
