//! Registry-completeness property test (modern-roster contract).
//!
//! The roster contract has three legs, and a prefetcher added to the
//! registry must hold all of them without any further wiring:
//!
//! 1. every registry entry (Figure 9 + modern) appears by name in the
//!    sweep roster every differential battery iterates;
//! 2. every registry name resolves through the daemon's name-based
//!    wire format and survives a wire round-trip with identical
//!    content-addressed jobs;
//! 3. every registry entry survives the panic-isolation battery: run
//!    as a lockstep lane next to an injected-fault lane, it must
//!    produce its exact serial result while the fault lane dies alone.

use ebcp_bench::throughput::sweep_roster;
use ebcp_bench::Scale;
use ebcp_prefetch::{BaselineConfig, FaultConfig};
use ebcp_serve::SweepSpec;
use ebcp_sim::{PrefetcherSpec, RunSpec, SimConfig};
use ebcp_trace::WorkloadSpec;

/// Every name any registry hands out, in one place.
fn registry_names(scale: &Scale) -> Vec<String> {
    scale
        .figure9_roster()
        .into_iter()
        .chain(scale.modern_roster())
        .map(|(n, _)| n.to_owned())
        .collect()
}

#[test]
fn every_registry_entry_is_in_the_sweep_roster() {
    let scale = Scale::quick();
    let roster_names: Vec<String> = sweep_roster(scale).iter().map(|p| p.name()).collect();
    for name in registry_names(&scale) {
        assert!(
            roster_names.iter().any(|n| *n == name),
            "registry entry {name:?} missing from sweep_roster: {roster_names:?}"
        );
    }
}

#[test]
fn every_registry_entry_resolves_and_round_trips_the_wire() {
    let scale = Scale::quick();
    let mut names = registry_names(&scale);
    // The filtered compositions are part of the addressable roster too.
    names.push("ebcp+nof".into());
    names.push("triangel+nof".into());
    for name in &names {
        let pf = SweepSpec::resolve_prefetcher(name, &scale)
            .unwrap_or_else(|e| panic!("{name:?} failed to resolve: {e}"));
        assert_eq!(pf.name(), *name);
    }

    // One grid over every name: encode, decode, and compare the
    // content-addressed jobs both ends would build.
    let spec = SweepSpec {
        workloads: vec!["database".into(), "graph".into()],
        prefetchers: names,
        cores: Vec::new(),
        scale,
    };
    let jobs = spec.jobs().expect("grid expands");
    let text = spec.to_value().to_json();
    let back = SweepSpec::from_value(&ebcp_harness::json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, spec);
    let a: Vec<_> = jobs.iter().map(ebcp_harness::Job::id).collect();
    let b: Vec<_> = back
        .jobs()
        .unwrap()
        .iter()
        .map(ebcp_harness::Job::id)
        .collect();
    assert_eq!(a, b, "wire round-trip changed the content-addressed jobs");
}

#[test]
fn every_registry_entry_survives_the_panic_isolation_battery() {
    let scale = Scale::quick();
    let spec = RunSpec {
        workload: WorkloadSpec::database().scaled(1, 32),
        seed: 11,
        warmup_insts: 40_000,
        measure_insts: 50_000,
        sim: SimConfig::scaled_down(16),
    };
    let pre = spec.pre_resolve();

    let lanes: Vec<PrefetcherSpec> = registry_names(&scale)
        .iter()
        .map(|n| SweepSpec::resolve_prefetcher(n, &scale).unwrap())
        .collect();
    let serial: Vec<_> = lanes
        .iter()
        .map(|pf| spec.run_preresolved(&pre, pf))
        .collect();

    // All registry lanes plus one fault lane, in a single lockstep
    // group: the fault dies alone, every registry entry matches its
    // serial result bit for bit.
    let mut pfs = lanes.clone();
    pfs.push(PrefetcherSpec::baseline(
        "fault",
        BaselineConfig::Fault(FaultConfig::panic_after(25)),
    ));
    let results = spec.run_preresolved_many(&pre, &pfs);
    assert_eq!(results.len(), pfs.len());
    let reason = results
        .last()
        .unwrap()
        .as_ref()
        .expect_err("fault lane must die");
    assert!(reason.contains("injected fault"), "{reason}");
    for ((pf, lane), reference) in lanes.iter().zip(&results).zip(&serial) {
        let got = lane
            .as_ref()
            .unwrap_or_else(|e| panic!("{} died next to the fault lane: {e}", pf.name()));
        assert_eq!(got, reference, "{} disturbed by the fault lane", pf.name());
    }
}
