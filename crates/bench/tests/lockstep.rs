//! Differential battery for lockstep multi-prefetcher replay.
//!
//! The lockstep engine (`ebcp_sim::Lockstep`) claims byte-identity with
//! serial replay on every SIMD tier. This battery checks that claim two
//! ways:
//!
//! 1. the full sweep roster × workload matrix, every lane compared to
//!    its own serial `run_preresolved` result, on every tier the host
//!    supports (scalar reference included — CI additionally re-runs the
//!    battery under `EBCP_SIMD=scalar` to cover the env-dispatch path);
//! 2. randomized lane subsets, lane orderings and replay-budget split
//!    points, driven through the raw `Lockstep` API. The PRNG seed is
//!    printed and embedded in every assertion message, so a failure is
//!    reproducible from the log alone.

use ebcp_bench::throughput::sweep_roster;
use ebcp_bench::Scale;
use ebcp_sim::{Engine, Lockstep, PrefetcherSpec, ReplayCursor, RunSpec, SimConfig, SimdTier};
use ebcp_trace::WorkloadSpec;

/// xorshift64* — deterministic, dependency-free randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn shuffle<T>(v: &mut [T], rng: &mut Rng) {
    for i in (1..v.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
}

/// Splits `total` into 1..=4 random non-negative chunks that sum back
/// to `total` (zero-sized chunks included on purpose: a zero-budget
/// replay call must be a no-op).
fn random_splits(total: u64, rng: &mut Rng) -> Vec<u64> {
    let n = 1 + rng.below(4);
    let mut parts = Vec::new();
    let mut left = total;
    for _ in 1..n {
        let cut = rng.below(left + 1);
        parts.push(cut);
        left -= cut;
    }
    parts.push(left);
    parts
}

/// Every roster lane of every workload, lockstep vs serial, on every
/// SIMD tier this host can run — the full differential matrix. The
/// machine is the quick (1/16) CI scale; the instruction budget is
/// trimmed so the matrix stays test-suite-sized.
#[test]
fn full_roster_matrix_is_byte_identical_on_every_tier() {
    let scale = Scale {
        den: 16,
        warm_tenths: 5,
        measure_tenths: 5,
        seed: 11,
    };
    let roster = sweep_roster(scale);
    assert!(roster.len() >= 14, "roster shrank to {}", roster.len());
    let tiers = SimdTier::available_tiers();
    for w in scale.workloads_all() {
        let spec = scale.run_spec(&w, scale.machine());
        let pre = spec.pre_resolve();
        let serial: Vec<_> = roster
            .iter()
            .map(|pf| spec.run_preresolved(&pre, pf))
            .collect();
        for &tier in &tiers {
            let lanes = spec.run_preresolved_many_with(&pre, &roster, tier);
            assert_eq!(lanes.len(), roster.len());
            for ((pf, lane), reference) in roster.iter().zip(&lanes).zip(&serial) {
                let got = lane
                    .as_ref()
                    .unwrap_or_else(|e| panic!("{} x {} died on {tier:?}: {e}", w.name, pf.name()));
                assert_eq!(
                    got,
                    reference,
                    "{} x {} diverged from serial replay on {tier:?}",
                    w.name,
                    pf.name()
                );
            }
        }
    }
}

/// Randomized lane subsets, orderings and budget split points through
/// the raw `Lockstep` API: any way of carving the warm-up and measure
/// budgets into replay calls, over any subset of lanes in any order,
/// must reproduce each lane's serial result exactly.
#[test]
fn randomized_subsets_orderings_and_budget_splits_match_serial() {
    let seed: u64 = 0x9E37_79B9_7F4A_7C15;
    println!("lockstep battery seed: {seed:#x}");
    let mut rng = Rng::new(seed);

    let spec = RunSpec {
        workload: WorkloadSpec::database().scaled(1, 32),
        seed: 11,
        warmup_insts: 40_000,
        measure_insts: 50_000,
        sim: SimConfig::scaled_down(16),
    };
    let pre = spec.pre_resolve();
    let roster = sweep_roster(Scale::quick());
    let serial: Vec<_> = roster
        .iter()
        .map(|pf| spec.run_preresolved(&pre, pf))
        .collect();
    let tiers = SimdTier::available_tiers();

    for round in 0..12 {
        // A random non-empty subset, in random order.
        let mut picked: Vec<usize> = (0..roster.len()).filter(|_| rng.below(2) == 1).collect();
        if picked.is_empty() {
            picked.push(rng.below(roster.len() as u64) as usize);
        }
        shuffle(&mut picked, &mut rng);
        let tier = tiers[round % tiers.len()];

        let engines = picked
            .iter()
            .map(|&k| Engine::new(spec.sim, roster[k].build()))
            .collect();
        let mut group = Lockstep::with_tier(engines, tier);
        let mut cur = ReplayCursor::default();
        let warm_splits = random_splits(spec.warmup_insts, &mut rng);
        for chunk in &warm_splits {
            group.replay(&pre.events, &mut cur, *chunk);
        }
        group.reset_stats();
        let measure_splits = random_splits(spec.measure_insts, &mut rng);
        for chunk in &measure_splits {
            group.replay(&pre.events, &mut cur, *chunk);
        }
        let lanes = group.results(&spec.workload.name);

        for (lane, &k) in lanes.iter().zip(&picked) {
            let got = lane.as_ref().unwrap_or_else(|e| {
                panic!(
                    "seed {seed:#x} round {round}: lane {} died on {tier:?} \
                     (warm splits {warm_splits:?}, measure splits {measure_splits:?}): {e}",
                    roster[k].name()
                )
            });
            assert_eq!(
                got,
                &serial[k],
                "seed {seed:#x} round {round}: lane {} diverged on {tier:?} \
                 (warm splits {warm_splits:?}, measure splits {measure_splits:?})",
                roster[k].name()
            );
        }
    }
}

/// A fault lane injected at a random position dies alone; every
/// sibling lane still matches its serial result bit for bit.
#[test]
fn random_fault_lane_position_never_disturbs_siblings() {
    use ebcp_prefetch::{BaselineConfig, FaultConfig};
    let seed: u64 = 0xD1B5_4A32_D192_ED03;
    println!("lockstep fault battery seed: {seed:#x}");
    let mut rng = Rng::new(seed);

    let spec = RunSpec {
        workload: WorkloadSpec::database().scaled(1, 32),
        seed: 11,
        warmup_insts: 40_000,
        measure_insts: 50_000,
        sim: SimConfig::scaled_down(16),
    };
    let pre = spec.pre_resolve();
    let roster = sweep_roster(Scale::quick());
    let serial: Vec<_> = roster
        .iter()
        .map(|pf| spec.run_preresolved(&pre, pf))
        .collect();
    let tiers = SimdTier::available_tiers();

    for round in 0..4 {
        let tier = tiers[round % tiers.len()];
        let slot = rng.below(roster.len() as u64 + 1) as usize;
        let mut pfs: Vec<PrefetcherSpec> = roster.clone();
        pfs.insert(
            slot,
            PrefetcherSpec::baseline(
                "fault",
                BaselineConfig::Fault(FaultConfig::panic_after(rng.below(60))),
            ),
        );
        let lanes = spec.run_preresolved_many_with(&pre, &pfs, tier);
        for (i, lane) in lanes.iter().enumerate() {
            if i == slot {
                let reason = lane.as_ref().expect_err("fault lane must die");
                assert!(
                    reason.contains("injected fault"),
                    "seed {seed:#x} round {round}: unexpected reason {reason}"
                );
                continue;
            }
            let k = if i < slot { i } else { i - 1 };
            let got = lane.as_ref().unwrap_or_else(|e| {
                panic!(
                    "seed {seed:#x} round {round}: sibling {} died on {tier:?}: {e}",
                    pfs[i].name()
                )
            });
            assert_eq!(
                got,
                &serial[k],
                "seed {seed:#x} round {round}: sibling {} disturbed by fault lane at {slot} \
                 on {tier:?}",
                pfs[i].name()
            );
        }
    }
}
