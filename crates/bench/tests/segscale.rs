//! Equivalence battery for the scale-out trace paths: segment-spliced
//! and pipelined replay vs monolithic replay across the full sweep
//! roster, mmap'd segment-file replay vs the in-memory generator, and
//! the harness's forced-streaming end-to-end path vs the materialized
//! reference. These are the checks that let the large trace tier run
//! on the O(segment) paths without a correctness asterisk; the
//! *approximate* scatter mode's tolerance is pinned separately
//! (`ebcp_sim::segment` tests and the `tracescale` module tests).

use std::sync::Arc;

use ebcp_bench::throughput::sweep_roster;
use ebcp_bench::{Harness, HarnessConfig, Job, Scale};
use ebcp_sim::frontend::segment_events;
use ebcp_sim::{run_pipelined, run_preresolved_blocks};
use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::{Backing, TraceGenerator, TraceRecord};

/// The lockstep battery's trimmed quick scale: the full machine
/// geometry at 1/16, with the instruction budget cut so the roster ×
/// workload matrix stays test-suite-sized.
fn trimmed() -> Scale {
    Scale {
        den: 16,
        warm_tenths: 5,
        measure_tenths: 5,
        seed: 11,
    }
}

/// A miniature scale for the harness end-to-end case, matching the
/// harness integration tests.
fn tiny() -> Scale {
    Scale {
        den: 64,
        warm_tenths: 2,
        measure_tenths: 1,
        seed: 11,
    }
}

/// Segment-spliced replay (`run_preresolved_blocks`) must be
/// byte-identical to monolithic replay for **every** registered
/// prefetcher × workload, at segmentations that land boundaries
/// mid-gap and mid-warm-up; the FE∥BE pipeline must match on a
/// representative subset (its block production is the same code path
/// for every lane — the prefetcher never sees the segmentation).
#[test]
fn spliced_and_pipelined_replay_match_monolithic_for_the_full_roster() {
    let scale = trimmed();
    let pfs = sweep_roster(scale);
    assert!(pfs.len() >= 10, "roster shrank to {}", pfs.len());
    for w in scale.workloads() {
        let spec = scale.run_spec(&w, scale.machine());
        let program = Arc::new(WorkloadProgram::build(&spec.workload));
        let pre = spec.pre_resolve_with(Arc::clone(&program));
        for (i, pf) in pfs.iter().enumerate() {
            let mono = spec.run_preresolved(&pre, pf);
            // A prime length (boundaries mid-everything) and a
            // power-of-two length (the tier the benchmark uses).
            for seg in [9_973u64, 1 << 18] {
                let blocks = segment_events(&pre, seg);
                assert!(blocks.len() > 1, "segmentation must actually split");
                let spliced = run_preresolved_blocks(&spec, &blocks, pf);
                assert_eq!(
                    spliced,
                    mono,
                    "spliced replay diverged: {} x {} at seg {seg}",
                    w.name,
                    pf.name()
                );
            }
            // Pipeline one lane per workload plus the tuned EBCP tail
            // lane — cheap enough, and covers the channel handoff.
            if i == 0 || i == pfs.len() - 1 {
                let piped = run_pipelined(&spec, Arc::clone(&program), 1 << 18, pf);
                assert_eq!(
                    piped,
                    mono,
                    "pipelined replay diverged: {} x {}",
                    w.name,
                    pf.name()
                );
            }
        }
    }
}

/// Replaying a workload's on-disk segmented trace — through mmap'd
/// windows and through plain buffered reads — must reproduce the
/// generator's records exactly, chunk boundaries and all.
#[test]
fn segmented_trace_replay_is_byte_identical_to_the_generator() {
    let scale = tiny();
    let dir = std::env::temp_dir().join(format!("ebcp-segscale-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch store dir");
    for w in scale.workloads() {
        let spec = scale.run_spec(&w, scale.machine());
        // An awkward segment length: boundaries never align with the
        // read chunking below.
        ebcp_harness::traces::generate(&dir, &spec, 9_973).expect("trace generation");
        let open = |backing| {
            ebcp_harness::traces::open_or_generate(&dir, &spec, 9_973, backing, |p, r| {
                panic!("unexpected quarantine of {}: {r}", p.display())
            })
            .expect("segmented trace open")
        };
        let mut mapped = open(Backing::Mmap);
        let mut buffered = open(Backing::Buffered);
        let mut gen = TraceGenerator::new(&spec.workload, spec.seed);
        let total = spec.warmup_insts + spec.measure_insts;
        let mut seen = 0u64;
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        loop {
            let want = 4_096.min((total - seen) as usize);
            if want == 0 {
                break;
            }
            let got = gen.next_chunk(&mut c, want);
            if got == 0 {
                break;
            }
            let from_map = mapped.next_chunk(&mut a, got);
            let from_buf = buffered.next_chunk(&mut b, got);
            assert_eq!(from_map, got, "{}: mmap ran short at {seen}", w.name);
            assert_eq!(from_buf, got, "{}: buffered ran short at {seen}", w.name);
            assert_eq!(a, c, "{}: mmap replay diverged at {seen}", w.name);
            assert_eq!(b, c, "{}: buffered replay diverged at {seen}", w.name);
            seen += got as u64;
        }
        assert_eq!(seen, total, "{}: replay covered the whole trace", w.name);
        // Both sources must now be exhausted too.
        let mut rest: Vec<TraceRecord> = Vec::new();
        assert_eq!(mapped.next_chunk(&mut rest, 1), 0);
        assert_eq!(buffered.next_chunk(&mut rest, 1), 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End to end through the harness: a 1-byte memory budget forces every
/// job onto the streamed path (disk-cached pre-resolved blocks over an
/// mmap'd trace store), and the results must be byte-identical to the
/// default materialized execution.
#[test]
fn forced_streaming_harness_matches_materialized_execution() {
    let scale = tiny();
    let pfs = {
        let all = sweep_roster(scale);
        // Three lanes are enough end-to-end: no prefetcher, one GHB
        // baseline, the tuned EBCP tail.
        vec![all[0].clone(), all[1].clone(), all[all.len() - 1].clone()]
    };
    let jobs: Vec<Job> = scale
        .workloads()
        .into_iter()
        .map(|w| scale.run_spec(&w, scale.machine()))
        .flat_map(|spec| pfs.iter().map(move |pf| Job::new(spec.clone(), pf.clone())))
        .collect();

    let reference = Harness::serial().run(&jobs);

    let dir = std::env::temp_dir().join(format!("ebcp-segscale-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let streamed_harness = Harness::new(HarnessConfig {
        jobs: 2,
        mem_budget_bytes: 1,
        store_dir: Some(dir.clone()),
        trace_store: true,
        ..HarnessConfig::default()
    });
    let streamed = streamed_harness.run(&jobs);
    assert_eq!(streamed, reference, "streamed execution diverged");

    // The budget really forced the streamed stores into existence.
    let count = |class: &str| {
        walk(&dir.join(class))
            .into_iter()
            .filter(|p| p.is_file())
            .count()
    };
    assert!(count("preres") > 0, "no pre-resolved streams were written");
    assert!(count("traces") > 0, "no segmented traces were written");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Recursively lists paths under `dir` (empty if it doesn't exist).
fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}
