//! Driver-level harness integration: the Figure 9 suite renders
//! identically for any worker count, and a warm result store makes a
//! repeated driver run simulation-free.

use ebcp_bench::{experiments, Harness, HarnessConfig, Scale};

/// A miniature scale so the full Figure 9 roster (44 simulations) stays
/// test-suite fast while exercising every prefetcher.
fn tiny() -> Scale {
    Scale {
        den: 64,
        warm_tenths: 2,
        measure_tenths: 1,
        seed: 11,
    }
}

#[test]
fn fig9_is_identical_for_one_and_eight_workers() {
    let one = Harness::new(HarnessConfig {
        jobs: 1,
        ..HarnessConfig::default()
    });
    let eight = Harness::new(HarnessConfig {
        jobs: 8,
        ..HarnessConfig::default()
    });
    let rows1 = experiments::fig9(&one, tiny());
    let rows8 = experiments::fig9(&eight, tiny());
    assert_eq!(rows1, rows8);
    assert_eq!(one.summary().executed, eight.summary().executed);
}

#[test]
fn warm_store_makes_table1_simulation_free() {
    let dir = std::env::temp_dir().join(format!("ebcp-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HarnessConfig {
        jobs: 2,
        store_dir: Some(dir.clone()),
        ..HarnessConfig::default()
    };

    let cold = Harness::new(cfg.clone());
    let rows = experiments::table1(&cold, tiny());
    assert_eq!(cold.summary().executed, 4);

    let warm = Harness::new(cfg);
    let rows2 = experiments::table1(&warm, tiny());
    assert_eq!(
        warm.summary().executed,
        0,
        "second run must be all disk hits"
    );
    assert_eq!(rows, rows2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Driver-level self-heal: corrupting a cached entry between two
/// `table1` runs costs exactly one re-simulation and changes nothing in
/// the rendered rows — the corrupt file is quarantined and overwritten.
#[test]
fn corrupt_store_entry_heals_without_changing_table1() {
    let dir = std::env::temp_dir().join(format!("ebcp-bench-heal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = HarnessConfig {
        jobs: 2,
        store_dir: Some(dir.clone()),
        ..HarnessConfig::default()
    };

    let cold = Harness::new(cfg.clone());
    let rows = experiments::table1(&cold, tiny());

    // Tear one cached result (any <shard>/<id>.json entry — the store
    // shards entries into two-hex-prefix subdirectories).
    fn find_json(dir: &std::path::Path) -> Option<std::path::PathBuf> {
        for entry in std::fs::read_dir(dir).ok()?.filter_map(Result::ok) {
            let p = entry.path();
            if p.is_dir() {
                if let Some(found) = find_json(&p) {
                    return Some(found);
                }
            } else if p.extension().is_some_and(|e| e == "json") {
                return Some(p);
            }
        }
        None
    }
    let victim = find_json(&dir).expect("the cold run must have cached entries");
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();

    let healed = Harness::new(cfg);
    let rows2 = experiments::table1(&healed, tiny());
    assert_eq!(rows, rows2, "healed table must be byte-identical");
    let s = healed.summary();
    assert_eq!(s.executed, 1, "only the corrupt cell re-simulates");
    assert_eq!(s.quarantined, 1);
    assert!(
        std::fs::read(&victim).unwrap().len() > bytes.len() / 3,
        "the entry must be overwritten with a full result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cmp_interleaving_parallel_matches_serial() {
    let one = Harness::new(HarnessConfig {
        jobs: 1,
        ..HarnessConfig::default()
    });
    let four = Harness::new(HarnessConfig {
        jobs: 4,
        ..HarnessConfig::default()
    });
    let scale = tiny();
    let a = experiments::cmp_interleaving(&one, scale, &[1, 2]);
    let b = experiments::cmp_interleaving(&four, scale, &[1, 2]);
    assert_eq!(a, b);
}
