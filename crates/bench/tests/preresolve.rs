//! Differential gate for the two-phase pipeline: for every registered
//! prefetcher × workload at quick scale, replaying the pre-resolved
//! event stream must produce a `SimResult` byte-identical to stepping
//! the full trace. This is the test that lets the figure drivers run on
//! the replay path without a correctness asterisk.

use ebcp_bench::{throughput, Scale};
use ebcp_sim::frontend::PreResolved;

#[test]
fn replay_matches_stepping_for_every_prefetcher_and_workload() {
    let scale = Scale::quick();
    // The sweep roster is the union of every prefetcher the experiment
    // drivers register (throughput + Figure 9 + modern competitors +
    // tuned EBCP variants + off-chip-filtered compositions), over the
    // extended workload roster (the paper's four + evolving graph).
    let pfs = throughput::sweep_roster(scale);
    assert!(pfs.len() >= 14, "roster unexpectedly small: {pfs:?}");
    for w in scale.workloads_all() {
        let spec = scale.run_spec(&w, scale.machine());
        let trace = spec.materialize();
        let pre = PreResolved::from_records(&spec.sim, &trace);
        for pf in &pfs {
            let stepped = spec.run_on(&trace, pf);
            let replayed = spec.run_preresolved(&pre, pf);
            assert_eq!(
                stepped,
                replayed,
                "replay diverged from stepping: {} x {}",
                w.name,
                pf.name()
            );
        }
    }
}
