//! Stepping-vs-DES differential battery.
//!
//! The discrete-event CMP engine earns its place by being
//! METRIC-IDENTICAL — full `CmpResult` equality, every counter of every
//! core — to the record-stepping oracle it replaced. This battery pins
//! that across the real sweep grid: the CMP prefetcher roster × all
//! four workload presets × {1, 2, 4, 8} cores, on the same
//! `Scale::cmp_spec` cells the figure driver, the sweep service and the
//! throughput bench build (trimmed warm-up/measure so the whole matrix
//! steps in debug tier-1 time — the unit-scale edge cases live next to
//! the engine in `ebcp-sim`).
//!
//! The `#[ignore]`d wall-clock test is the performance half of the
//! contract: CI runs it in `--release` with `--include-ignored`, where
//! the two-phase DES path must clear a 2× geomean speedup over the
//! pre-PR pipeline (trace generation + stepping) on untrimmed
//! quick-scale cells. The PR targeted 5×; measured reality is ~3×
//! (see DESIGN.md §3e for the table and the Amdahl analysis — the DES
//! replay already runs at parity with the single-core replay engine,
//! so the residual is the shared demand machinery both engines pay),
//! and the gate is set at 2× so honest wall-clock noise cannot flake
//! CI. Steady-state regressions are separately caught by the
//! throughput baseline's 25% CMP geomean gate.

use std::time::Instant;

use ebcp_core::EbcpConfig;
use ebcp_harness::Scale;
use ebcp_prefetch::{BaselineConfig, SolihinConfig};
use ebcp_sim::{CmpEngine, CmpResult, CmpSpec, PreResolved, PrefetcherSpec, SteppingCmpEngine};
use ebcp_trace::{TraceGenerator, TraceRecord, WorkloadSpec};

/// The CMP roster the grid sweeps: no prefetching, tuned EBCP (per-core
/// EMABs over one shared table), and the memory-side Solihin engine
/// whose successor chains the interleaved miss stream scrambles.
fn roster(scale: Scale) -> Vec<PrefetcherSpec> {
    let entries = scale.entries(1 << 20);
    vec![
        PrefetcherSpec::None,
        PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(entries)),
        PrefetcherSpec::baseline(
            "solihin-6,1",
            BaselineConfig::Solihin(SolihinConfig {
                entries,
                ..SolihinConfig::deep()
            }),
        ),
    ]
}

/// The quick-scale CMP cell with warm-up/measure overridden: identical
/// workload structure, per-core disjointness and machine geometry to
/// the real grid point, just shorter.
fn battery_spec(
    scale: Scale,
    preset: &WorkloadSpec,
    cores: usize,
    warm: u64,
    meas: u64,
) -> CmpSpec {
    let mut spec = scale.cmp_spec(preset, cores);
    spec.warmup_insts = warm;
    spec.measure_insts = meas;
    spec
}

/// Materializes one trace per core (what the stepping oracle consumes).
fn traces(spec: &CmpSpec) -> Vec<Vec<TraceRecord>> {
    (0..spec.cores())
        .map(|k| spec.core_run_spec(k).materialize().to_vec())
        .collect()
}

fn run_des(spec: &CmpSpec, t: &[Vec<TraceRecord>], pf: &PrefetcherSpec) -> CmpResult {
    let mut engine = CmpEngine::new(spec.sim, spec.cores(), pf.build());
    engine.run(t, spec.warmup_insts, spec.measure_insts, &spec.name)
}

fn run_oracle(spec: &CmpSpec, t: &[Vec<TraceRecord>], pf: &PrefetcherSpec) -> CmpResult {
    let mut oracle = SteppingCmpEngine::new(spec.sim, spec.cores(), pf.build());
    oracle.run(t, spec.warmup_insts, spec.measure_insts, &spec.name)
}

#[test]
fn des_is_metric_identical_to_stepping_across_the_grid() {
    let scale = Scale::quick();
    for preset in WorkloadSpec::all_presets() {
        for cores in [1usize, 2, 4, 8] {
            let spec = battery_spec(scale, &preset, cores, 3_000, 3_000);
            let t = traces(&spec);
            for pf in roster(scale) {
                assert_eq!(
                    run_des(&spec, &t, &pf),
                    run_oracle(&spec, &t, &pf),
                    "DES diverged from the stepping oracle: {} @ {cores} cores x {}",
                    spec.name,
                    pf.name()
                );
            }
        }
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[test]
fn registration_order_never_changes_the_result() {
    // The wake heap breaks ties on `(next_tick, component_id)`, so the
    // order cores are scheduled onto it must be unobservable. Pin it by
    // replaying the same cell under randomized registration
    // permutations and requiring full-result equality every time.
    let scale = Scale::quick();
    let preset = WorkloadSpec::database();
    let pf = &roster(scale)[1];
    for cores in [4usize, 8] {
        let spec = battery_spec(scale, &preset, cores, 3_000, 3_000);
        let streams = spec.pre_resolve_cores();
        let refs: Vec<&PreResolved> = streams.iter().collect();
        let identity: Vec<usize> = (0..cores).collect();
        let mut engine = CmpEngine::new(spec.sim, cores, pf.build());
        let reference = engine.run_streams_registered(
            &refs,
            spec.warmup_insts,
            spec.measure_insts,
            &spec.name,
            &identity,
        );

        let mut state = 0x9e37_79b9_7f4a_7c15_u64 ^ cores as u64;
        for round in 0..6 {
            let mut order = identity.clone();
            for i in (1..cores).rev() {
                let j = (xorshift(&mut state) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            let mut engine = CmpEngine::new(spec.sim, cores, pf.build());
            let got = engine.run_streams_registered(
                &refs,
                spec.warmup_insts,
                spec.measure_insts,
                &spec.name,
                &order,
            );
            assert_eq!(
                got, reference,
                "registration order {order:?} (round {round}, {cores} cores) changed the result"
            );
        }
    }
}

#[test]
#[ignore = "wall-clock gate; CI runs it in --release with --include-ignored"]
fn des_replay_beats_the_pre_pr_pipeline_geomean() {
    // Untrimmed quick-scale CMP cells, each side measured the way its
    // pipeline actually ran a roster cell. Pre-PR, the CMP path was
    // excluded from the two-phase split: every (cell, prefetcher) run
    // pulled its per-core traces from the generators and stepped every
    // record. Post-PR, per-core streams are pre-resolved once
    // (disk-cached by the harness, shared across the roster) and each
    // prefetcher pays only the DES replay with algebraic idle-skip.
    // The per-cell Minst/s ratio is therefore generation + stepping
    // vs. replay.
    let scale = Scale::quick();
    let preset = WorkloadSpec::database();
    let pf = &roster(scale)[1];
    let mut ratios = Vec::new();
    for cores in [2usize, 4, 8] {
        let spec = scale.cmp_spec(&preset, cores);
        let streams = spec.pre_resolve_cores();
        let refs: Vec<&PreResolved> = streams.iter().collect();
        // Untimed warm pass so neither side pays first-touch costs.
        spec.run_streams(&refs, pf);

        let t0 = Instant::now();
        let des = spec.run_streams(&refs, pf);
        let des_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let mut gens: Vec<TraceGenerator> = (0..cores)
            .map(|k| {
                let rs = spec.core_run_spec(k);
                TraceGenerator::new(&rs.workload, rs.seed)
            })
            .collect();
        let mut oracle = SteppingCmpEngine::new(spec.sim, cores, pf.build());
        let stepped =
            oracle.run_chunked(&mut gens, spec.warmup_insts, spec.measure_insts, &spec.name);
        let step_s = t1.elapsed().as_secs_f64();
        assert_eq!(des, stepped, "{cores} cores");

        let ratio = step_s / des_s;
        println!("{cores} cores: pre-PR cell {step_s:.3}s / DES replay {des_s:.3}s = {ratio:.2}x");
        ratios.push(ratio);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("geomean speedup: {geomean:.2}x (PR target 5x, measured ~3x; gate 2x)");
    assert!(
        geomean >= 2.0,
        "DES speedup geomean {geomean:.2}x (per-cell {ratios:?}) is below the 2x gate"
    );
}
