//! Experiment scaling — re-exported from the harness, where the sweep
//! service (`ebcp-serve`) shares it. Kept as a module so driver code
//! and tests keep importing `ebcp_bench::scale::Scale` unchanged.

pub use ebcp_harness::scale::Scale;

// Trace delivery lives in the harness too (budgeted materialize-vs-
// stream); re-exported here for source compatibility.
pub use ebcp_harness::TraceSource;
