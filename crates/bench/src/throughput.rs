//! Simulated-throughput benchmark: engine Minst/s per workload ×
//! prefetcher.
//!
//! Unlike the figure drivers, throughput runs never flow through the
//! caching [`Harness`](ebcp_harness::Harness) — a memoized result has no
//! wall time. Each cell materializes the trace once (generation excluded
//! from the timed region), replays it through a fresh engine, and
//! reports simulated millions of instructions per wall-clock second.
//! The committed baseline under `crates/bench/baselines/` turns the
//! numbers into a CI gate: a geometric-mean regression beyond the
//! tolerance fails the run.

use std::time::Instant;

use ebcp_core::EbcpConfig;
use ebcp_harness::Value;
use ebcp_prefetch::{BaselineConfig, GhbConfig, StreamConfig};
use ebcp_sim::PrefetcherSpec;

use crate::scale::Scale;

/// One timed cell of the throughput matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Workload name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Trace records replayed (one record = one instruction).
    pub records: u64,
    /// Wall-clock milliseconds for the engine replay.
    pub wall_ms: f64,
    /// Simulated millions of instructions per second.
    pub mips: f64,
}

/// The prefetchers timed per workload: the no-prefetch hot path, a
/// cheap sequential baseline, a table-heavy baseline and the EBCP.
pub fn roster(scale: Scale) -> Vec<PrefetcherSpec> {
    let d = scale.den as usize;
    let entries = scale.entries(1 << 20);
    vec![
        PrefetcherSpec::None,
        PrefetcherSpec::baseline("stream", BaselineConfig::Stream(StreamConfig::default())),
        PrefetcherSpec::baseline(
            "ghb-large",
            BaselineConfig::Ghb(GhbConfig {
                index_entries: ((256 << 10) / d).max(1 << 10),
                ghb_entries: ((256 << 10) / d).max(1 << 10),
                ..GhbConfig::large()
            }),
        ),
        PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(entries)),
    ]
}

/// Times every workload × roster cell at `scale` (sequential, so cells
/// do not contend for cores and the numbers are comparable run to run).
pub fn measure(scale: Scale) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for w in scale.workloads() {
        let spec = scale.run_spec(&w, scale.machine());
        let trace = spec.materialize();
        for pf in roster(scale) {
            let t0 = Instant::now();
            let result = spec.run_on(&trace, &pf);
            let wall = t0.elapsed().as_secs_f64();
            std::hint::black_box(&result);
            rows.push(ThroughputRow {
                workload: w.name.clone(),
                prefetcher: pf.name(),
                records: trace.len() as u64,
                wall_ms: wall * 1e3,
                mips: trace.len() as f64 / wall / 1e6,
            });
        }
    }
    rows
}

/// Geometric mean of the per-cell Minst/s (robust to one fast cell
/// dominating an arithmetic mean).
pub fn geomean_mips(rows: &[ThroughputRow]) -> f64 {
    let positive: Vec<f64> = rows.iter().map(|r| r.mips).filter(|&m| m > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|m| m.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// Encodes the matrix as the `BENCH_throughput.json` document.
pub fn to_json(scale: Scale, rows: &[ThroughputRow]) -> Value {
    let rows_json = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("workload".into(), Value::Str(r.workload.clone())),
                ("prefetcher".into(), Value::Str(r.prefetcher.clone())),
                ("records".into(), Value::Int(r.records)),
                ("wall_ms".into(), Value::Num(r.wall_ms)),
                ("mips".into(), Value::Num(r.mips)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Int(1)),
        ("scale_den".into(), Value::Int(scale.den)),
        ("geomean_mips".into(), Value::Num(geomean_mips(rows))),
        ("rows".into(), Value::Arr(rows_json)),
    ])
}

/// Compares measured rows against a committed baseline document.
///
/// Returns `(current, baseline)` geometric means on success.
///
/// # Errors
///
/// Fails if the baseline is malformed or the current geometric mean
/// dropped by more than `max_drop` (a fraction, e.g. `0.25`).
pub fn check_against_baseline(
    rows: &[ThroughputRow],
    baseline: &Value,
    max_drop: f64,
) -> Result<(f64, f64), String> {
    let base = baseline
        .get("geomean_mips")
        .and_then(Value::as_f64)
        .ok_or_else(|| "baseline missing geomean_mips".to_owned())?;
    if base <= 0.0 {
        return Err(format!("baseline geomean_mips not positive: {base}"));
    }
    let cur = geomean_mips(rows);
    let floor = base * (1.0 - max_drop);
    if cur < floor {
        return Err(format!(
            "simulated throughput regressed: geomean {cur:.1} Minst/s is below \
             {floor:.1} ({:.0}% of baseline {base:.1})",
            (1.0 - max_drop) * 100.0
        ));
    }
    Ok((cur, base))
}

/// Renders the matrix as an aligned table.
pub fn render(rows: &[ThroughputRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Simulated throughput (engine replay, trace generation excluded)"
    );
    let _ = writeln!(
        s,
        "{:<22} {:<14} {:>12} {:>10} {:>10}",
        "workload", "prefetcher", "records", "wall ms", "Minst/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:<14} {:>12} {:>10.1} {:>10.1}",
            r.workload, r.prefetcher, r.records, r.wall_ms, r.mips
        );
    }
    let _ = writeln!(s, "geomean: {:.1} Minst/s", geomean_mips(rows));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mips: f64) -> ThroughputRow {
        ThroughputRow {
            workload: "database".into(),
            prefetcher: "none".into(),
            records: 1_000_000,
            wall_ms: 1_000_000.0 / mips / 1e3,
            mips,
        }
    }

    #[test]
    fn geomean_math() {
        let rows = [row(10.0), row(40.0)];
        assert!((geomean_mips(&rows) - 20.0).abs() < 1e-9);
        assert_eq!(geomean_mips(&[]), 0.0);
    }

    #[test]
    fn json_document_shape() {
        let rows = [row(25.0)];
        let v = to_json(Scale::quick(), &rows);
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("scale_den").unwrap().as_u64(), Some(16));
        let parsed = ebcp_harness::json::parse(&v.to_json_pretty()).unwrap();
        let back = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].get("workload").unwrap().as_str(), Some("database"));
        assert!((back[0].get("mips").unwrap().as_f64().unwrap() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_gate() {
        let baseline = to_json(Scale::quick(), &[row(40.0)]);
        // Within tolerance: 31 > 40 * 0.75.
        assert!(check_against_baseline(&[row(31.0)], &baseline, 0.25).is_ok());
        // Beyond tolerance: 29 < 30.
        let err = check_against_baseline(&[row(29.0)], &baseline, 0.25).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // Malformed baseline.
        assert!(check_against_baseline(&[row(29.0)], &Value::Null, 0.25).is_err());
    }

    #[test]
    fn render_lists_every_cell() {
        let s = render(&[row(25.0)]);
        assert!(s.contains("database"));
        assert!(s.contains("geomean"));
    }

    #[test]
    fn roster_names() {
        let names: Vec<String> = roster(Scale::quick()).iter().map(|p| p.name()).collect();
        assert_eq!(names, ["none", "stream", "ghb-large", "ebcp"]);
    }
}
