//! Simulated-throughput benchmark: engine Minst/s per workload ×
//! prefetcher.
//!
//! Unlike the figure drivers, throughput runs never flow through the
//! caching [`Harness`](ebcp_harness::Harness) — a memoized result has no
//! wall time. Each cell materializes the trace once (generation excluded
//! from the timed region), replays it through a fresh engine, and
//! reports simulated millions of instructions per wall-clock second.
//! The committed baseline under `crates/bench/baselines/` turns the
//! numbers into a CI gate: a geometric-mean regression beyond the
//! tolerance fails the run.

use std::time::Instant;

use ebcp_core::EbcpConfig;
use ebcp_harness::Value;
use ebcp_prefetch::{BaselineConfig, GhbConfig, StreamConfig};
use ebcp_sim::PrefetcherSpec;

use crate::scale::Scale;

/// One timed cell of the throughput matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Workload name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Trace records replayed (one record = one instruction).
    pub records: u64,
    /// Wall-clock milliseconds for the engine replay.
    pub wall_ms: f64,
    /// Simulated millions of instructions per second.
    pub mips: f64,
}

/// The prefetchers timed per workload: the no-prefetch hot path, a
/// cheap sequential baseline, a table-heavy baseline and the EBCP.
pub fn roster(scale: Scale) -> Vec<PrefetcherSpec> {
    let d = scale.den as usize;
    let entries = scale.entries(1 << 20);
    vec![
        PrefetcherSpec::None,
        PrefetcherSpec::baseline("stream", BaselineConfig::Stream(StreamConfig::default())),
        PrefetcherSpec::baseline(
            "ghb-large",
            BaselineConfig::Ghb(GhbConfig {
                index_entries: ((256 << 10) / d).max(1 << 10),
                ghb_entries: ((256 << 10) / d).max(1 << 10),
                ..GhbConfig::large()
            }),
        ),
        PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(entries)),
    ]
}

/// Every prefetcher any experiment driver registers: the throughput
/// roster plus the Figure 9 comparison roster (capacity-matched
/// baselines, tuned EBCP, EBCP-minus), the modern competitor roster
/// (Triangel, AMC) and the off-chip-filtered compositions, deduplicated
/// by name. This is the "all prefetchers" column of a sweep-mode cell,
/// and the roster the differential replay gate must cover.
pub fn sweep_roster(scale: Scale) -> Vec<PrefetcherSpec> {
    let mut pfs = roster(scale);
    for (name, cfg) in scale.figure9_roster() {
        pfs.push(PrefetcherSpec::baseline(name, cfg));
    }
    for (name, cfg) in scale.modern_roster() {
        pfs.push(PrefetcherSpec::baseline(name, cfg));
    }
    pfs.push(PrefetcherSpec::Ebcp(
        EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20)),
    ));
    pfs.push(PrefetcherSpec::Ebcp(
        EbcpConfig::comparison_minus().with_table_entries(scale.entries(1 << 20)),
    ));
    // The neural off-chip filter composed over the main contender and a
    // cheap baseline ("{inner}+nof" cells).
    pfs.push(PrefetcherSpec::filtered(PrefetcherSpec::Ebcp(
        EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20)),
    )));
    pfs.push(PrefetcherSpec::filtered(PrefetcherSpec::baseline(
        "stream",
        BaselineConfig::Stream(StreamConfig::default()),
    )));
    let mut seen = std::collections::HashSet::new();
    pfs.retain(|p| seen.insert(p.name()));
    pfs
}

/// Times every workload × roster cell at `scale` (sequential, so cells
/// do not contend for cores and the numbers are comparable run to run).
pub fn measure(scale: Scale) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for w in scale.workloads_all() {
        let spec = scale.run_spec(&w, scale.machine());
        let trace = spec.materialize();
        for pf in roster(scale) {
            let t0 = Instant::now();
            let result = spec.run_on(&trace, &pf);
            let wall = t0.elapsed().as_secs_f64();
            std::hint::black_box(&result);
            rows.push(ThroughputRow {
                workload: w.name.clone(),
                prefetcher: pf.name(),
                records: trace.len() as u64,
                wall_ms: wall * 1e3,
                mips: trace.len() as f64 / wall / 1e6,
            });
        }
    }
    rows
}

/// One sweep-mode cell: a whole workload × roster column, run the way
/// the harness actually runs figure sweeps — one front-end
/// pre-resolution pass, then back-end-only replays for every
/// prefetcher. This is where the two-phase pipeline's amortized win
/// shows up, so it gets its own gate.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Workload name.
    pub workload: String,
    /// Roster prefetchers replayed against the shared stream.
    pub prefetchers: u64,
    /// Trace records per cell (one record = one instruction).
    pub records: u64,
    /// Wall-clock ms to step every cell over the materialized trace.
    pub stepped_ms: f64,
    /// Wall-clock ms to pre-resolve once + replay every cell.
    pub sweep_ms: f64,
    /// `stepped_ms / sweep_ms`.
    pub speedup: f64,
    /// Amortized sweep throughput: `records × prefetchers / sweep_ms`,
    /// in Minst/s.
    pub mips: f64,
}

/// Times one sweep per workload at `scale`: the full-stepping cost of
/// the roster against the pre-resolve-once + replay-each cost.
/// Sequential for run-to-run comparability, like [`measure`].
pub fn measure_sweep(scale: Scale) -> Vec<SweepRow> {
    use ebcp_sim::frontend::PreResolved;
    let mut rows = Vec::new();
    for w in scale.workloads_all() {
        let spec = scale.run_spec(&w, scale.machine());
        let trace = spec.materialize();
        let roster = sweep_roster(scale);

        // Allocator warm-up: the first multi-MB event buffer built in a
        // fresh region pays first-touch page faults (hundreds of ms on
        // the largest workloads) that neither a steady-state process
        // nor the harness's disk-cached stream path pays again; one
        // untimed pass keeps that out of the measurement.
        std::hint::black_box(PreResolved::from_records(&spec.sim, &trace));

        // Two timed repetitions per mode, keeping the minimum: a cell
        // runs hundreds of ms, where a single scheduler hiccup on a
        // shared host smears one shot by 20-30%, and the minimum is
        // the robust estimator of the true cost. Both modes get the
        // identical treatment so the speedup ratio stays fair.
        let mut stepped = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            for pf in &roster {
                std::hint::black_box(spec.run_on(&trace, pf));
            }
            stepped = stepped.min(t0.elapsed().as_secs_f64());
        }

        // The front-end pass is part of the sweep cost — it is exactly
        // what the replays amortize.
        let mut sweep = f64::INFINITY;
        for _ in 0..2 {
            let t1 = Instant::now();
            let pre = PreResolved::from_records(&spec.sim, &trace);
            for pf in &roster {
                std::hint::black_box(spec.run_preresolved(&pre, pf));
            }
            sweep = sweep.min(t1.elapsed().as_secs_f64());
        }

        let total = trace.len() as u64 * roster.len() as u64;
        rows.push(SweepRow {
            workload: w.name.clone(),
            prefetchers: roster.len() as u64,
            records: trace.len() as u64,
            stepped_ms: stepped * 1e3,
            sweep_ms: sweep * 1e3,
            speedup: stepped / sweep.max(1e-12),
            mips: total as f64 / sweep.max(1e-12) / 1e6,
        });
    }
    rows
}

/// One lockstep-mode cell: the whole sweep roster driven by a single
/// pass over the shared pre-resolved stream
/// ([`RunSpec::run_preresolved_many`](ebcp_sim::RunSpec)), against the
/// serial pre-resolve-once + replay-each sweep the harness used before
/// lockstep. The decode and gap-collapse work the serial sweep repeats
/// per prefetcher is paid once here, so this is the cell the SIMD-lane
/// replay is gated on.
#[derive(Debug, Clone, PartialEq)]
pub struct LockstepRow {
    /// Workload name.
    pub workload: String,
    /// Roster prefetchers replayed as lockstep lanes.
    pub prefetchers: u64,
    /// Trace records per cell (one record = one instruction).
    pub records: u64,
    /// Wall-clock ms to pre-resolve once + replay each lane serially.
    pub serial_ms: f64,
    /// Wall-clock ms to pre-resolve once + one lockstep pass.
    pub lockstep_ms: f64,
    /// `serial_ms / lockstep_ms`.
    pub speedup: f64,
    /// Amortized lockstep throughput: `records × prefetchers /
    /// lockstep_ms`, in Minst/s.
    pub mips: f64,
}

/// Times one lockstep cell per workload at `scale`: the serial
/// replay-each sweep against a single lockstep pass over the same
/// stream. Sequential for run-to-run comparability, like [`measure`].
pub fn measure_lockstep(scale: Scale) -> Vec<LockstepRow> {
    use ebcp_sim::frontend::PreResolved;
    let mut rows = Vec::new();
    for w in scale.workloads_all() {
        let spec = scale.run_spec(&w, scale.machine());
        let trace = spec.materialize();
        let roster = sweep_roster(scale);

        // Allocator warm-up, as in `measure_sweep`.
        std::hint::black_box(PreResolved::from_records(&spec.sim, &trace));

        // Min-of-2 per mode, identical treatment for a fair ratio. Both
        // modes include the front-end pass: it is part of what a sweep
        // costs, and both amortize it the same way.
        let mut serial = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            let pre = PreResolved::from_records(&spec.sim, &trace);
            for pf in &roster {
                std::hint::black_box(spec.run_preresolved(&pre, pf));
            }
            serial = serial.min(t0.elapsed().as_secs_f64());
        }

        let mut lockstep = f64::INFINITY;
        for _ in 0..2 {
            let t1 = Instant::now();
            let pre = PreResolved::from_records(&spec.sim, &trace);
            std::hint::black_box(spec.run_preresolved_many(&pre, &roster));
            lockstep = lockstep.min(t1.elapsed().as_secs_f64());
        }

        let total = trace.len() as u64 * roster.len() as u64;
        rows.push(LockstepRow {
            workload: w.name.clone(),
            prefetchers: roster.len() as u64,
            records: trace.len() as u64,
            serial_ms: serial * 1e3,
            lockstep_ms: lockstep * 1e3,
            speedup: serial / lockstep.max(1e-12),
            mips: total as f64 / lockstep.max(1e-12) / 1e6,
        });
    }
    rows
}

/// One CMP-mode cell: a whole N-core chip — per-core front ends
/// pre-resolved once (untimed, like trace materialization above), then
/// the discrete-event CMP engine replays all cores against the shared
/// L2/bus/DRAM. This is the path the stepping engine made unaffordable;
/// the DES rebuild gets its own baseline gate so it cannot silently
/// regress back toward cycle-stepping cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpThroughputRow {
    /// Cores on the chip.
    pub cores: u64,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Trace records replayed chip-wide (one record = one instruction).
    pub records: u64,
    /// Wall-clock milliseconds for the DES replay.
    pub wall_ms: f64,
    /// Simulated millions of instructions per second, chip-wide.
    pub mips: f64,
}

/// The prefetchers timed per CMP cell: the no-prefetch hot path and the
/// EBCP (the two the `repro cmp` driver sweeps at every core count).
fn cmp_roster(scale: Scale) -> Vec<PrefetcherSpec> {
    vec![
        PrefetcherSpec::None,
        PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20))),
    ]
}

/// Times the CMP DES cells at `scale`: {1, 2, 4, 8}-core database mixes
/// × the CMP roster. Per-core streams are pre-resolved untimed (the
/// harness serves them from its warm map / disk cache in real sweeps);
/// the timed region is exactly the discrete-event replay. Sequential
/// for run-to-run comparability, like [`measure`].
pub fn measure_cmp(scale: Scale) -> Vec<CmpThroughputRow> {
    let preset = ebcp_trace::WorkloadSpec::database();
    let mut rows = Vec::new();
    for cores in [1u64, 2, 4, 8] {
        let spec = scale.cmp_spec(&preset, cores as usize);
        let streams = spec.pre_resolve_cores();
        let refs: Vec<&ebcp_sim::frontend::PreResolved> = streams.iter().collect();
        let records = (spec.warmup_insts + spec.measure_insts) * cores;
        for pf in cmp_roster(scale) {
            // Min-of-2, as in `measure_sweep`: CMP cells are the
            // shortest timed regions in the file, so one scheduler
            // hiccup smears a single shot the most.
            let mut wall = f64::INFINITY;
            for _ in 0..2 {
                let t0 = Instant::now();
                std::hint::black_box(spec.run_streams(&refs, &pf));
                wall = wall.min(t0.elapsed().as_secs_f64());
            }
            rows.push(CmpThroughputRow {
                cores,
                prefetcher: pf.name(),
                records,
                wall_ms: wall * 1e3,
                mips: records as f64 / wall.max(1e-12) / 1e6,
            });
        }
    }
    rows
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let positive: Vec<f64> = values.filter(|&m| m > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|m| m.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// Geometric mean of the per-cell Minst/s (robust to one fast cell
/// dominating an arithmetic mean).
pub fn geomean_mips(rows: &[ThroughputRow]) -> f64 {
    geomean(rows.iter().map(|r| r.mips))
}

/// Geometric mean of the amortized sweep Minst/s.
pub fn sweep_geomean_mips(rows: &[SweepRow]) -> f64 {
    geomean(rows.iter().map(|r| r.mips))
}

/// Geometric mean of the per-workload sweep speedups.
pub fn sweep_geomean_speedup(rows: &[SweepRow]) -> f64 {
    geomean(rows.iter().map(|r| r.speedup))
}

/// Geometric mean of the amortized lockstep Minst/s.
pub fn lockstep_geomean_mips(rows: &[LockstepRow]) -> f64 {
    geomean(rows.iter().map(|r| r.mips))
}

/// Geometric mean of the per-workload lockstep-vs-serial speedups.
pub fn lockstep_geomean_speedup(rows: &[LockstepRow]) -> f64 {
    geomean(rows.iter().map(|r| r.speedup))
}

/// Geometric mean of the chip-wide CMP DES Minst/s.
pub fn cmp_geomean_mips(rows: &[CmpThroughputRow]) -> f64 {
    geomean(rows.iter().map(|r| r.mips))
}

/// Encodes the matrix plus the sweep, lockstep and CMP cells as the
/// `BENCH_throughput.json` document (schema 5; schema 4 predates the
/// modern competitor roster and the evolving-graph workload, schema 3
/// had no CMP section, schema 2 no lockstep section, schema 1 no sweep
/// section).
pub fn to_json(
    scale: Scale,
    rows: &[ThroughputRow],
    sweep: &[SweepRow],
    lockstep: &[LockstepRow],
    cmp: &[CmpThroughputRow],
) -> Value {
    let rows_json = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("workload".into(), Value::Str(r.workload.clone())),
                ("prefetcher".into(), Value::Str(r.prefetcher.clone())),
                ("records".into(), Value::Int(r.records)),
                ("wall_ms".into(), Value::Num(r.wall_ms)),
                ("mips".into(), Value::Num(r.mips)),
            ])
        })
        .collect();
    let sweep_json = sweep
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("workload".into(), Value::Str(r.workload.clone())),
                ("prefetchers".into(), Value::Int(r.prefetchers)),
                ("records".into(), Value::Int(r.records)),
                ("stepped_ms".into(), Value::Num(r.stepped_ms)),
                ("sweep_ms".into(), Value::Num(r.sweep_ms)),
                ("speedup".into(), Value::Num(r.speedup)),
                ("mips".into(), Value::Num(r.mips)),
            ])
        })
        .collect();
    let lockstep_json = lockstep
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("workload".into(), Value::Str(r.workload.clone())),
                ("prefetchers".into(), Value::Int(r.prefetchers)),
                ("records".into(), Value::Int(r.records)),
                ("serial_ms".into(), Value::Num(r.serial_ms)),
                ("lockstep_ms".into(), Value::Num(r.lockstep_ms)),
                ("speedup".into(), Value::Num(r.speedup)),
                ("mips".into(), Value::Num(r.mips)),
            ])
        })
        .collect();
    let cmp_json = cmp
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("cores".into(), Value::Int(r.cores)),
                ("prefetcher".into(), Value::Str(r.prefetcher.clone())),
                ("records".into(), Value::Int(r.records)),
                ("wall_ms".into(), Value::Num(r.wall_ms)),
                ("mips".into(), Value::Num(r.mips)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("schema".into(), Value::Int(5)),
        ("scale_den".into(), Value::Int(scale.den)),
        ("geomean_mips".into(), Value::Num(geomean_mips(rows))),
        (
            "sweep_geomean_mips".into(),
            Value::Num(sweep_geomean_mips(sweep)),
        ),
        (
            "sweep_geomean_speedup".into(),
            Value::Num(sweep_geomean_speedup(sweep)),
        ),
        (
            "lockstep_geomean_mips".into(),
            Value::Num(lockstep_geomean_mips(lockstep)),
        ),
        (
            "lockstep_geomean_speedup".into(),
            Value::Num(lockstep_geomean_speedup(lockstep)),
        ),
        ("cmp_geomean_mips".into(), Value::Num(cmp_geomean_mips(cmp))),
        ("rows".into(), Value::Arr(rows_json)),
        ("sweep".into(), Value::Arr(sweep_json)),
        ("lockstep".into(), Value::Arr(lockstep_json)),
        ("cmp".into(), Value::Arr(cmp_json)),
    ])
}

/// Compares measured rows against a committed baseline document.
///
/// Returns `(current, baseline)` geometric means on success.
///
/// # Errors
///
/// Fails if the baseline is malformed or the current geometric mean
/// dropped by more than `max_drop` (a fraction, e.g. `0.25`).
pub fn check_against_baseline(
    rows: &[ThroughputRow],
    baseline: &Value,
    max_drop: f64,
) -> Result<(f64, f64), String> {
    let base = baseline
        .get("geomean_mips")
        .and_then(Value::as_f64)
        .ok_or_else(|| "baseline missing geomean_mips".to_owned())?;
    if base <= 0.0 {
        return Err(format!("baseline geomean_mips not positive: {base}"));
    }
    let cur = geomean_mips(rows);
    let floor = base * (1.0 - max_drop);
    if cur < floor {
        return Err(format!(
            "simulated throughput regressed: geomean {cur:.1} Minst/s is below \
             {floor:.1} ({:.0}% of baseline {base:.1})",
            (1.0 - max_drop) * 100.0
        ));
    }
    Ok((cur, base))
}

/// Compares measured sweep cells against a committed baseline document.
///
/// Returns `(current, baseline)` geometric mean amortized Minst/s on
/// success. A schema-1 baseline (no `sweep_geomean_mips`) passes
/// trivially with a baseline of `0.0`, so the gate can be introduced
/// without a flag day.
///
/// # Errors
///
/// Fails if the current sweep geometric mean dropped by more than
/// `max_drop` below the baseline.
pub fn check_sweep_against_baseline(
    sweep: &[SweepRow],
    baseline: &Value,
    max_drop: f64,
) -> Result<(f64, f64), String> {
    let cur = sweep_geomean_mips(sweep);
    let Some(base) = baseline.get("sweep_geomean_mips").and_then(Value::as_f64) else {
        return Ok((cur, 0.0));
    };
    if base <= 0.0 {
        return Err(format!("baseline sweep_geomean_mips not positive: {base}"));
    }
    let floor = base * (1.0 - max_drop);
    if cur < floor {
        return Err(format!(
            "sweep throughput regressed: geomean {cur:.1} Minst/s is below \
             {floor:.1} ({:.0}% of baseline {base:.1})",
            (1.0 - max_drop) * 100.0
        ));
    }
    Ok((cur, base))
}

/// Compares measured lockstep cells against a committed baseline
/// document.
///
/// Returns `(current, baseline)` geometric mean amortized Minst/s on
/// success. A pre-lockstep baseline (no `lockstep_geomean_mips`)
/// passes trivially with a baseline of `0.0`, so the gate can be
/// introduced without a flag day.
///
/// # Errors
///
/// Fails if the current lockstep geometric mean dropped by more than
/// `max_drop` below the baseline.
pub fn check_lockstep_against_baseline(
    lockstep: &[LockstepRow],
    baseline: &Value,
    max_drop: f64,
) -> Result<(f64, f64), String> {
    let cur = lockstep_geomean_mips(lockstep);
    let Some(base) = baseline
        .get("lockstep_geomean_mips")
        .and_then(Value::as_f64)
    else {
        return Ok((cur, 0.0));
    };
    if base <= 0.0 {
        return Err(format!(
            "baseline lockstep_geomean_mips not positive: {base}"
        ));
    }
    let floor = base * (1.0 - max_drop);
    if cur < floor {
        return Err(format!(
            "lockstep throughput regressed: geomean {cur:.1} Minst/s is below \
             {floor:.1} ({:.0}% of baseline {base:.1})",
            (1.0 - max_drop) * 100.0
        ));
    }
    Ok((cur, base))
}

/// Compares measured CMP DES cells against a committed baseline
/// document.
///
/// Returns `(current, baseline)` geometric mean chip-wide Minst/s on
/// success. A pre-DES baseline (no `cmp_geomean_mips`) passes trivially
/// with a baseline of `0.0`, so the gate can be introduced without a
/// flag day.
///
/// # Errors
///
/// Fails if the current CMP geometric mean dropped by more than
/// `max_drop` below the baseline.
pub fn check_cmp_against_baseline(
    cmp: &[CmpThroughputRow],
    baseline: &Value,
    max_drop: f64,
) -> Result<(f64, f64), String> {
    let cur = cmp_geomean_mips(cmp);
    let Some(base) = baseline.get("cmp_geomean_mips").and_then(Value::as_f64) else {
        return Ok((cur, 0.0));
    };
    if base <= 0.0 {
        return Err(format!("baseline cmp_geomean_mips not positive: {base}"));
    }
    let floor = base * (1.0 - max_drop);
    if cur < floor {
        return Err(format!(
            "CMP DES throughput regressed: geomean {cur:.1} Minst/s is below \
             {floor:.1} ({:.0}% of baseline {base:.1})",
            (1.0 - max_drop) * 100.0
        ));
    }
    Ok((cur, base))
}

/// Renders the matrix as an aligned table.
pub fn render(rows: &[ThroughputRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Simulated throughput (engine replay, trace generation excluded)"
    );
    let _ = writeln!(
        s,
        "{:<22} {:<14} {:>12} {:>10} {:>10}",
        "workload", "prefetcher", "records", "wall ms", "Minst/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:<14} {:>12} {:>10.1} {:>10.1}",
            r.workload, r.prefetcher, r.records, r.wall_ms, r.mips
        );
    }
    let _ = writeln!(s, "geomean: {:.1} Minst/s", geomean_mips(rows));
    s
}

/// Renders the sweep cells as an aligned table.
pub fn render_sweep(rows: &[SweepRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Sweep throughput (pre-resolve once, replay every prefetcher)"
    );
    let _ = writeln!(
        s,
        "{:<22} {:>4} {:>12} {:>11} {:>10} {:>8} {:>10}",
        "workload", "pf", "records", "stepped ms", "sweep ms", "speedup", "Minst/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:>4} {:>12} {:>11.1} {:>10.1} {:>7.2}x {:>10.1}",
            r.workload, r.prefetchers, r.records, r.stepped_ms, r.sweep_ms, r.speedup, r.mips
        );
    }
    let _ = writeln!(
        s,
        "geomean: {:.1} Minst/s amortized, {:.2}x vs stepping",
        sweep_geomean_mips(rows),
        sweep_geomean_speedup(rows)
    );
    s
}

/// Renders the lockstep cells as an aligned table.
pub fn render_lockstep(rows: &[LockstepRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Lockstep throughput (one pass over the shared stream drives every lane; \
         SIMD tier: {:?})",
        ebcp_mem::simd::tier()
    );
    let _ = writeln!(
        s,
        "{:<22} {:>4} {:>12} {:>10} {:>11} {:>8} {:>10}",
        "workload", "pf", "records", "serial ms", "lockstep ms", "speedup", "Minst/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:>4} {:>12} {:>10.1} {:>11.1} {:>7.2}x {:>10.1}",
            r.workload, r.prefetchers, r.records, r.serial_ms, r.lockstep_ms, r.speedup, r.mips
        );
    }
    let _ = writeln!(
        s,
        "geomean: {:.1} Minst/s amortized, {:.2}x vs serial replay",
        lockstep_geomean_mips(rows),
        lockstep_geomean_speedup(rows)
    );
    s
}

/// Renders the CMP DES cells as an aligned table.
pub fn render_cmp(rows: &[CmpThroughputRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "CMP throughput (discrete-event engine; per-core streams pre-resolved untimed)"
    );
    let _ = writeln!(
        s,
        "{:<8} {:<14} {:>12} {:>10} {:>10}",
        "cores", "prefetcher", "records", "wall ms", "Minst/s"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:<14} {:>12} {:>10.1} {:>10.1}",
            r.cores, r.prefetcher, r.records, r.wall_ms, r.mips
        );
    }
    let _ = writeln!(
        s,
        "geomean: {:.1} Minst/s chip-wide",
        cmp_geomean_mips(rows)
    );
    s
}

/// One row of the per-event-kind histogram (`repro bench-throughput
/// --event-mix`): how one workload's pre-resolved stream decomposes
/// into the kinds the replay loop dispatches on. This is the measured
/// input to DESIGN.md §3d's probe-bound analysis — and to the DES
/// idle-skip argument, since every `inert` record is a cycle the CMP
/// engine never has to step.
#[derive(Debug, Clone, PartialEq)]
pub struct EventMixRow {
    /// Workload name.
    pub workload: String,
    /// Event kind label.
    pub kind: &'static str,
    /// Trace records of this kind.
    pub count: u64,
    /// Fraction of the workload's records.
    pub share: f64,
}

/// The event-kind labels, in reporting order. `inert` counts the
/// records the front end collapsed into gap fields (no L2-visible
/// event); the rest are the flagged event records by decoded kind,
/// including `ifetch-only` records whose sole action is an off-chip
/// instruction miss. Those first eight kinds partition the stream.
/// `+ifetch-miss` is an overlay — every record carrying an instruction
/// miss, whatever its data kind — so it double-counts by design and is
/// excluded from the partition sum.
pub const EVENT_KINDS: [&str; 9] = [
    "inert",
    "load-miss",
    "load-feeds-mispredict",
    "store-miss",
    "store-hit-dirty",
    "serialize",
    "mispredict",
    "ifetch-only",
    "+ifetch-miss",
];

/// Decomposes each workload's pre-resolved stream (at `scale`, the same
/// streams every replay and sweep consumes) into per-kind record
/// counts. Deterministic — no timing involved.
pub fn event_mix(scale: Scale) -> Vec<EventMixRow> {
    use ebcp_sim::frontend::{PreResolved, ResolvedOp};
    let mut rows = Vec::new();
    for w in scale.workloads_all() {
        let spec = scale.run_spec(&w, scale.machine());
        let trace = spec.materialize();
        let pre = PreResolved::from_records(&spec.sim, &trace);
        let mut counts = [0u64; 9];
        for ev in &pre.events {
            counts[0] += u64::from(ev.gap);
            let Some(r) = ev.decode() else { continue };
            let k = match r.op {
                ResolvedOp::None => {
                    // An event record with no data op exists only to
                    // carry an instruction miss.
                    debug_assert!(r.ifetch_miss);
                    7
                }
                ResolvedOp::LoadMiss {
                    feeds_mispredict: false,
                    ..
                } => 1,
                ResolvedOp::LoadMiss {
                    feeds_mispredict: true,
                    ..
                } => 2,
                ResolvedOp::StoreMiss { .. } => 3,
                ResolvedOp::StoreHit { .. } => 4,
                ResolvedOp::Serialize => 5,
                ResolvedOp::Mispredict => 6,
            };
            counts[k] += 1;
            if r.ifetch_miss {
                counts[8] += 1;
            }
        }
        let total = trace.len() as f64;
        for (k, &count) in counts.iter().enumerate() {
            rows.push(EventMixRow {
                workload: w.name.clone(),
                kind: EVENT_KINDS[k],
                count,
                share: count as f64 / total.max(1.0),
            });
        }
    }
    rows
}

/// Renders the event-mix histogram as an aligned table.
pub fn render_event_mix(rows: &[EventMixRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Event mix (front-end pre-resolved stream; DESIGN.md §3d probe-bound analysis)"
    );
    let _ = writeln!(
        s,
        "{:<22} {:<22} {:>12} {:>8}",
        "workload", "kind", "records", "share"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:<22} {:>12} {:>7.2}%",
            r.workload,
            r.kind,
            r.count,
            r.share * 100.0
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(mips: f64) -> ThroughputRow {
        ThroughputRow {
            workload: "database".into(),
            prefetcher: "none".into(),
            records: 1_000_000,
            wall_ms: 1_000_000.0 / mips / 1e3,
            mips,
        }
    }

    fn sweep_row(mips: f64, speedup: f64) -> SweepRow {
        let sweep_ms = 4.0 * 1_000_000.0 / mips / 1e3;
        SweepRow {
            workload: "database".into(),
            prefetchers: 4,
            records: 1_000_000,
            stepped_ms: sweep_ms * speedup,
            sweep_ms,
            speedup,
            mips,
        }
    }

    fn lockstep_row(mips: f64, speedup: f64) -> LockstepRow {
        let lockstep_ms = 4.0 * 1_000_000.0 / mips / 1e3;
        LockstepRow {
            workload: "database".into(),
            prefetchers: 4,
            records: 1_000_000,
            serial_ms: lockstep_ms * speedup,
            lockstep_ms,
            speedup,
            mips,
        }
    }

    fn cmp_row(mips: f64) -> CmpThroughputRow {
        CmpThroughputRow {
            cores: 4,
            prefetcher: "ebcp".into(),
            records: 4_000_000,
            wall_ms: 4_000_000.0 / mips / 1e3,
            mips,
        }
    }

    #[test]
    fn geomean_math() {
        let rows = [row(10.0), row(40.0)];
        assert!((geomean_mips(&rows) - 20.0).abs() < 1e-9);
        assert_eq!(geomean_mips(&[]), 0.0);
        let sweeps = [sweep_row(30.0, 2.0), sweep_row(120.0, 8.0)];
        assert!((sweep_geomean_mips(&sweeps) - 60.0).abs() < 1e-9);
        assert!((sweep_geomean_speedup(&sweeps) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn json_document_shape() {
        let rows = [row(25.0)];
        let sweeps = [sweep_row(100.0, 4.0)];
        let locksteps = [lockstep_row(400.0, 4.0)];
        let cmps = [cmp_row(800.0)];
        let v = to_json(Scale::quick(), &rows, &sweeps, &locksteps, &cmps);
        assert_eq!(v.get("schema").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("scale_den").unwrap().as_u64(), Some(16));
        let parsed = ebcp_harness::json::parse(&v.to_json_pretty()).unwrap();
        let back = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].get("workload").unwrap().as_str(), Some("database"));
        assert!((back[0].get("mips").unwrap().as_f64().unwrap() - 25.0).abs() < 1e-9);
        let sw = parsed.get("sweep").unwrap().as_arr().unwrap();
        assert_eq!(sw.len(), 1);
        assert_eq!(sw[0].get("prefetchers").unwrap().as_u64(), Some(4));
        assert!((sw[0].get("speedup").unwrap().as_f64().unwrap() - 4.0).abs() < 1e-9);
        let g = parsed.get("sweep_geomean_mips").unwrap().as_f64().unwrap();
        assert!((g - 100.0).abs() < 1e-9);
        let ls = parsed.get("lockstep").unwrap().as_arr().unwrap();
        assert_eq!(ls.len(), 1);
        assert!((ls[0].get("speedup").unwrap().as_f64().unwrap() - 4.0).abs() < 1e-9);
        let lg = parsed
            .get("lockstep_geomean_mips")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((lg - 400.0).abs() < 1e-9);
        let cm = parsed.get("cmp").unwrap().as_arr().unwrap();
        assert_eq!(cm.len(), 1);
        assert_eq!(cm[0].get("cores").unwrap().as_u64(), Some(4));
        assert!((cm[0].get("mips").unwrap().as_f64().unwrap() - 800.0).abs() < 1e-9);
        let cg = parsed.get("cmp_geomean_mips").unwrap().as_f64().unwrap();
        assert!((cg - 800.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_gate() {
        let baseline = to_json(
            Scale::quick(),
            &[row(40.0)],
            &[sweep_row(100.0, 4.0)],
            &[lockstep_row(400.0, 4.0)],
            &[cmp_row(800.0)],
        );
        // Within tolerance: 31 > 40 * 0.75.
        assert!(check_against_baseline(&[row(31.0)], &baseline, 0.25).is_ok());
        // Beyond tolerance: 29 < 30.
        let err = check_against_baseline(&[row(29.0)], &baseline, 0.25).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // Malformed baseline.
        assert!(check_against_baseline(&[row(29.0)], &Value::Null, 0.25).is_err());
    }

    #[test]
    fn sweep_baseline_gate() {
        let baseline = to_json(
            Scale::quick(),
            &[row(40.0)],
            &[sweep_row(100.0, 4.0)],
            &[lockstep_row(400.0, 4.0)],
            &[cmp_row(800.0)],
        );
        // Within tolerance: 80 > 100 * 0.75.
        assert!(check_sweep_against_baseline(&[sweep_row(80.0, 3.0)], &baseline, 0.25).is_ok());
        // Beyond tolerance: 70 < 75.
        let err =
            check_sweep_against_baseline(&[sweep_row(70.0, 3.0)], &baseline, 0.25).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // Schema-1 baseline without a sweep section passes trivially.
        let old = Value::Obj(vec![("geomean_mips".into(), Value::Num(40.0))]);
        let (cur, base) =
            check_sweep_against_baseline(&[sweep_row(70.0, 3.0)], &old, 0.25).unwrap();
        assert!((cur - 70.0).abs() < 1e-9);
        assert_eq!(base, 0.0);
    }

    #[test]
    fn lockstep_baseline_gate() {
        let baseline = to_json(
            Scale::quick(),
            &[row(40.0)],
            &[sweep_row(100.0, 4.0)],
            &[lockstep_row(400.0, 4.0)],
            &[cmp_row(800.0)],
        );
        // Within tolerance: 320 > 400 * 0.75.
        assert!(
            check_lockstep_against_baseline(&[lockstep_row(320.0, 3.0)], &baseline, 0.25).is_ok()
        );
        // Beyond tolerance: 280 < 300.
        let err = check_lockstep_against_baseline(&[lockstep_row(280.0, 3.0)], &baseline, 0.25)
            .unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // A schema-2 baseline without a lockstep section passes
        // trivially, so the gate needs no flag day.
        let old = Value::Obj(vec![("sweep_geomean_mips".into(), Value::Num(100.0))]);
        let (cur, base) =
            check_lockstep_against_baseline(&[lockstep_row(280.0, 3.0)], &old, 0.25).unwrap();
        assert!((cur - 280.0).abs() < 1e-9);
        assert_eq!(base, 0.0);
    }

    #[test]
    fn cmp_baseline_gate() {
        let baseline = to_json(
            Scale::quick(),
            &[row(40.0)],
            &[sweep_row(100.0, 4.0)],
            &[lockstep_row(400.0, 4.0)],
            &[cmp_row(800.0)],
        );
        // Within tolerance: 640 > 800 * 0.75.
        assert!(check_cmp_against_baseline(&[cmp_row(640.0)], &baseline, 0.25).is_ok());
        // Beyond tolerance: 560 < 600.
        let err = check_cmp_against_baseline(&[cmp_row(560.0)], &baseline, 0.25).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        // A schema-3 baseline without a cmp section passes trivially,
        // so the gate needs no flag day.
        let old = Value::Obj(vec![("lockstep_geomean_mips".into(), Value::Num(400.0))]);
        let (cur, base) = check_cmp_against_baseline(&[cmp_row(560.0)], &old, 0.25).unwrap();
        assert!((cur - 560.0).abs() < 1e-9);
        assert_eq!(base, 0.0);
    }

    #[test]
    fn render_lists_every_cell() {
        let s = render(&[row(25.0)]);
        assert!(s.contains("database"));
        assert!(s.contains("geomean"));
        let sw = render_sweep(&[sweep_row(100.0, 4.0)]);
        assert!(sw.contains("database"));
        assert!(sw.contains("4.00x"));
        let ls = render_lockstep(&[lockstep_row(400.0, 4.0)]);
        assert!(ls.contains("database"));
        assert!(ls.contains("4.00x"));
        assert!(ls.contains("SIMD tier"));
        let cm = render_cmp(&[cmp_row(800.0)]);
        assert!(cm.contains("ebcp"));
        assert!(cm.contains("chip-wide"));
    }

    #[test]
    fn event_mix_covers_every_record() {
        // The histogram partitions each workload's trace: inert + the
        // data/control kinds (ifetch-miss overlays, so it is excluded
        // from the partition) must sum to the record count exactly.
        let scale = Scale::quick();
        let rows = event_mix(scale);
        for w in scale.workloads_all() {
            let spec = scale.run_spec(&w, scale.machine());
            let total = spec.warmup_insts + spec.measure_insts;
            let partition: u64 = rows
                .iter()
                .filter(|r| r.workload == w.name && r.kind != "+ifetch-miss")
                .map(|r| r.count)
                .sum();
            assert_eq!(partition, total, "{} partition", w.name);
            // A real workload has inert records and load misses.
            let get = |kind: &str| {
                rows.iter()
                    .find(|r| r.workload == w.name && r.kind == kind)
                    .unwrap()
                    .count
            };
            assert!(get("inert") > 0, "{} inert", w.name);
            assert!(get("load-miss") > 0, "{} load-miss", w.name);
        }
        assert_eq!(rows.len(), scale.workloads_all().len() * EVENT_KINDS.len());
        let table = render_event_mix(&rows);
        assert!(table.contains("inert"));
        assert!(table.contains('%'));
    }

    #[test]
    fn roster_names() {
        let names: Vec<String> = roster(Scale::quick()).iter().map(|p| p.name()).collect();
        assert_eq!(names, ["none", "stream", "ghb-large", "ebcp"]);
    }

    #[test]
    fn sweep_roster_covers_every_registered_prefetcher() {
        let scale = Scale::quick();
        let names: Vec<String> = sweep_roster(scale).iter().map(|p| p.name()).collect();
        // Every figure-9 and modern registry entry appears by name.
        for (name, _) in scale.figure9_roster() {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
        for (name, _) in scale.modern_roster() {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
        // The filtered compositions ride along.
        for name in ["ebcp", "ebcp-minus", "ebcp+nof", "stream+nof"] {
            assert!(names.iter().any(|n| n == name), "missing {name}");
        }
        // Dedup by name held.
        let distinct: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(distinct.len(), names.len());
    }
}
