//! Trace-scale benchmark: monolithic vs segment-streamed vs
//! segment-parallel execution of one workload × EBCP cell.
//!
//! Modes of the same computation (the equivalence battery in
//! `tests/segscale.rs` proves the exact ones replay-identical):
//!
//! * **monolithic** — one worker, O(trace) memory: the full front-end
//!   pass materializes the packed event stream, then the back end
//!   replays it. The pre-PR-9 cost model. Quick tier only.
//! * **segmented** — one worker, O(segment) memory: the front end and
//!   back end interleave block by block over a lazy iterator; nothing
//!   larger than a segment is ever resident. Exact.
//! * **pipelined** — FE and BE on separate threads, O(segment) memory
//!   ([`ebcp_sim::run_pipelined`]). Exact; the overlap win is bounded
//!   by the front end's ~5-10% share of the cost, so this mode buys
//!   memory, not speedup.
//! * **1-worker stream replay** — large tier only: the front end runs
//!   once, streaming blocks to an on-disk pre-resolved cache
//!   (`EBCPPRE3`, the harness's own format); one worker then replays
//!   the stream end to end. Exact, and the honest single-worker cost
//!   of a cached back-end pass.
//! * **scatter** — large tier only: ≥2 workers replay the measured
//!   region of the *same* disk stream as [`SCATTER_SPANS`] contiguous
//!   spans ([`ebcp_sim::run_scatter_spans_with`]), each span
//!   reconstructing warm state from an overlap window instead of the
//!   whole prefix. Approximate within a documented tolerance (the row
//!   records the CPI error vs the exact replay); this is the
//!   segment-parallel configuration that beats the single worker,
//!   because spans skip the serial warm-up replay — the bulk of a
//!   large-tier trace — outside their overlap windows.
//!
//! The quick tier times the first three (the committed baseline under
//! `crates/bench/baselines/` gates the geomean against a 25% drop);
//! the large tier (`--scale large`, ~100× quick) deliberately skips
//! monolithic — materializing a 100× event stream is exactly what the
//! streamed modes exist to avoid, and it would also pollute the
//! process RSS high-water mark this tier reports as evidence of
//! O(segment) residency — and adds the two disk-stream cells, gating
//! scatter's speedup over the single worker. Like the throughput
//! benches, cells never flow through the caching harness: a memoized
//! result has no wall time.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ebcp_core::EbcpConfig;
use ebcp_harness::{preres, CacheRead, Job, Value};
use ebcp_sim::frontend::{PreBlock, PreResolver};
use ebcp_sim::{
    run_pipelined, run_preresolved_blocks, run_scatter_spans_with, Engine, PrefetcherSpec, RunSpec,
    SimResult,
};
use ebcp_trace::template::WorkloadProgram;
use ebcp_trace::TraceGenerator;

use crate::scale::Scale;

/// One timed workload cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceScaleRow {
    /// Workload name.
    pub workload: String,
    /// Trace records replayed (one record = one instruction).
    pub records: u64,
    /// Segment length used by the streamed modes.
    pub seg_records: u64,
    /// Wall-clock ms for the monolithic mode; `0.0` at the large tier,
    /// which does not run it.
    pub monolithic_ms: f64,
    /// Wall-clock ms for the single-worker segment-streamed mode.
    pub segmented_ms: f64,
    /// Wall-clock ms for the pipelined mode.
    pub pipelined_ms: f64,
    /// Wall-clock ms for one worker replaying the pre-resolved disk
    /// stream end to end; `0.0` at the quick tier, which does not run
    /// the disk-stream cells.
    pub replay1_ms: f64,
    /// Wall-clock ms for the segment-parallel scatter replay of the
    /// same disk stream; `0.0` at the quick tier.
    pub scatter_ms: f64,
    /// Scatter workers used; `0` at the quick tier.
    pub workers: u64,
    /// Scatter CPI relative error against the exact replay, in
    /// percent — the documented tolerance of the approximate mode.
    pub scatter_err_pct: f64,
    /// Single-worker cost over the parallel mode's: monolithic over
    /// pipelined at the quick tier, 1-worker stream replay over
    /// scatter at the large tier (where [`check_speedup`] gates it).
    pub speedup: f64,
    /// Pipelined throughput in simulated Minst/s.
    pub mips: f64,
}

/// Segment length for the benchmark's streamed modes: long enough
/// that per-block overhead (engine handoff, channel sends) is noise,
/// short enough that even the quick workloads split into 10+ segments
/// and the large tier stays comfortably O(segment) — ~2 Mi records is
/// a ~48 MiB worst-case event block.
pub const SEG_RECORDS: u64 = 1 << 21;

/// Overlap blocks each scatter span replays to reconstruct warm
/// state — at [`SEG_RECORDS`] that is ~8.4M records of warm-up per
/// span, which the convergence study (DESIGN.md §3f) puts well inside
/// a fraction of a percent of CPI error.
pub const SCATTER_OVERLAP: usize = 4;

/// Scatter splice granularity: the measured region splits into this
/// many contiguous spans regardless of worker count, so the result is
/// deterministic across machines. Eight spans keep every core of a
/// CI-sized box busy while the total overlap tax stays at
/// `8 × SCATTER_OVERLAP` blocks — small against the serial warm-up
/// replay the mode exists to skip.
pub const SCATTER_SPANS: usize = 8;

/// Scatter worker count: the machine's parallelism, clamped to at
/// least the 2 workers the acceptance gate is about and at most 8 (the
/// task list is short; more workers would just idle).
pub fn scatter_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

/// The timed prefetcher: the paper's tuned EBCP (the cell every figure
/// sweep actually pays for).
fn prefetcher(scale: Scale) -> PrefetcherSpec {
    PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20)))
}

/// Lazily generates and pre-resolves `spec`'s trace in `seg_records`
/// blocks — the front end runs from inside the consumer's iteration,
/// so whoever drives the iterator holds at most one block.
fn lazy_blocks(
    spec: &RunSpec,
    program: Arc<WorkloadProgram>,
    seg_records: u64,
) -> impl Iterator<Item = PreBlock> {
    let mut gen = TraceGenerator::with_program(program, spec.workload.clone(), spec.seed);
    let mut pr = PreResolver::new(&spec.sim);
    let mut chunk = Vec::with_capacity(Engine::CHUNK_RECORDS);
    let mut left = spec.warmup_insts + spec.measure_insts;
    let mut done = false;
    std::iter::from_fn(move || {
        if done {
            return None;
        }
        loop {
            if left == 0 {
                done = true;
                return (pr.pending_records() > 0).then(|| pr.split_block());
            }
            let room = seg_records - pr.pending_records();
            let want = (Engine::CHUNK_RECORDS as u64).min(left).min(room) as usize;
            let got = gen.next_chunk(&mut chunk, want);
            if got == 0 {
                done = true;
                return (pr.pending_records() > 0).then(|| pr.split_block());
            }
            pr.push_chunk(&chunk);
            left -= got as u64;
            if pr.pending_records() == seg_records {
                return Some(pr.split_block());
            }
        }
    })
}

/// Single-worker segment-streamed run: front end and back end
/// interleave on one thread with O(segment) resident.
fn run_segmented_serial(
    spec: &RunSpec,
    program: Arc<WorkloadProgram>,
    seg_records: u64,
    pf: &PrefetcherSpec,
) -> SimResult {
    run_preresolved_blocks(spec, lazy_blocks(spec, program, seg_records), pf)
}

/// Streams `spec`'s front-end pass into `job`'s on-disk pre-resolved
/// cache under `dir` — one bounded pass, nothing but a block resident.
fn write_stream(
    spec: &RunSpec,
    program: Arc<WorkloadProgram>,
    seg_records: u64,
    dir: &Path,
    job: &Job,
) {
    let mut w = preres::PreresWriter::create(dir, job, seg_records).expect("preres stream writer");
    for b in lazy_blocks(spec, program, seg_records) {
        w.push_block(&b.events, b.records)
            .expect("preres block write");
    }
    w.finish().expect("preres stream publish");
}

/// Opens `job`'s stream, panicking on a miss — this benchmark wrote it
/// moments ago, so anything but a hit is a broken run.
fn open_stream(dir: &Path, job: &Job) -> preres::PreresStream {
    match preres::open_stream_checked(dir, job) {
        CacheRead::Hit(s) => s,
        CacheRead::Miss => panic!("freshly written stream missing from {}", dir.display()),
        CacheRead::Quarantined { path, reason } => {
            panic!(
                "freshly written stream quarantined at {}: {reason}",
                path.display()
            )
        }
    }
}

/// Times every workload at `scale` in the three in-memory modes
/// (min-of-2 per mode, like the throughput benches) and asserts the
/// three results byte-identical — a silently-divergent mode would make
/// the timing comparison meaningless.
///
/// # Panics
///
/// Panics if any mode disagrees with the monolithic result.
pub fn measure(scale: Scale) -> Vec<TraceScaleRow> {
    let pf = prefetcher(scale);
    let mut rows = Vec::new();
    for w in scale.workloads() {
        let spec = scale.run_spec(&w, scale.machine());
        let program = Arc::new(WorkloadProgram::build(&spec.workload));
        let records = spec.warmup_insts + spec.measure_insts;

        // Allocator warm-up, as in the throughput benches: the first
        // multi-MB event buffer pays first-touch page faults the
        // steady state never pays again.
        std::hint::black_box(spec.pre_resolve_with(Arc::clone(&program)));

        let mut mono = f64::INFINITY;
        let mut mono_result = None;
        for _ in 0..2 {
            let t0 = Instant::now();
            let pre = spec.pre_resolve_with(Arc::clone(&program));
            let r = spec.run_preresolved(&pre, &pf);
            mono = mono.min(t0.elapsed().as_secs_f64());
            mono_result = Some(r);
        }
        let mono_result = mono_result.expect("two monolithic reps ran");

        let mut seg = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            let r = run_segmented_serial(&spec, Arc::clone(&program), SEG_RECORDS, &pf);
            seg = seg.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                r, mono_result,
                "segmented replay diverged from monolithic on {}",
                w.name
            );
        }

        let mut pipe = f64::INFINITY;
        for _ in 0..2 {
            let t0 = Instant::now();
            let r = run_pipelined(&spec, Arc::clone(&program), SEG_RECORDS, &pf);
            pipe = pipe.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                r, mono_result,
                "pipelined replay diverged from monolithic on {}",
                w.name
            );
        }

        rows.push(TraceScaleRow {
            workload: w.name.clone(),
            records,
            seg_records: SEG_RECORDS,
            monolithic_ms: mono * 1e3,
            segmented_ms: seg * 1e3,
            pipelined_ms: pipe * 1e3,
            replay1_ms: 0.0,
            scatter_ms: 0.0,
            workers: 0,
            scatter_err_pct: 0.0,
            speedup: mono / pipe.max(1e-12),
            mips: records as f64 / pipe.max(1e-12) / 1e6,
        });
    }
    rows
}

/// Times the large tier: the database preset only (the O(segment)
/// residency and parallel-speedup properties are workload-independent,
/// and one ~280M-record cell keeps the CI smoke job's wall clock
/// bounded), one rep per mode (the cells run for seconds, so a
/// scheduler hiccup is proportionally noise), and **no monolithic
/// mode** — see the module docs.
///
/// Beyond the streamed in-memory modes, this tier streams the front
/// end once into a scratch on-disk pre-resolved cache and times two
/// back-end replays of it: one worker end to end (exact; asserted
/// byte-identical to the segmented result, which also proves the disk
/// round-trip) and a scatter replay at [`scatter_workers`] workers
/// (approximate; its CPI error vs the exact result lands in the row).
/// The speedup gate compares those two — same stream, same cell, only
/// the worker count differs.
///
/// # Panics
///
/// Panics if an exact mode diverges, or on scratch-store I/O failure.
pub fn measure_large(scale: Scale) -> Vec<TraceScaleRow> {
    let pf = prefetcher(scale);
    let w = scale
        .workloads()
        .into_iter()
        .find(|w| w.name == "database")
        .expect("the database preset exists at every scale");
    let spec = scale.run_spec(&w, scale.machine());
    let program = Arc::new(WorkloadProgram::build(&spec.workload));
    let records = spec.warmup_insts + spec.measure_insts;

    let t0 = Instant::now();
    let exact = run_segmented_serial(&spec, Arc::clone(&program), SEG_RECORDS, &pf);
    let seg = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let piped = run_pipelined(&spec, Arc::clone(&program), SEG_RECORDS, &pf);
    let pipe = t1.elapsed().as_secs_f64();
    assert_eq!(
        piped, exact,
        "pipelined replay diverged from segmented on {}",
        w.name
    );

    // Disk-stream cells: the front end runs once; both replay cells
    // read the same published stream.
    let dir = std::env::temp_dir().join(format!("ebcp-trace-scale-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch store dir");
    let job = Job::new(spec.clone(), pf.clone());
    write_stream(&spec, Arc::clone(&program), SEG_RECORDS, &dir, &job);

    // One validated open, outside the timed cells: both replays pay
    // only the back-end work, as a sweep does once a stream is warm —
    // workers get independent handles via the index-cloning `reopen`.
    let stream = open_stream(&dir, &job);
    let block_records = stream.block_records();

    let t2 = Instant::now();
    let mut one = stream.reopen().expect("reopen validated stream");
    let replayed = run_preresolved_blocks(&spec, one.blocks(), &pf);
    let replay1 = t2.elapsed().as_secs_f64();
    drop(one);
    assert_eq!(
        replayed, exact,
        "disk-stream replay diverged from segmented on {}",
        w.name
    );

    let workers = scatter_workers();
    let t3 = Instant::now();
    let scattered = run_scatter_spans_with(
        &spec,
        &block_records,
        || {
            let mut s = stream.reopen().expect("reopen validated stream");
            move |k: usize| s.block(k).expect("validated stream read")
        },
        &pf,
        SCATTER_OVERLAP,
        SCATTER_SPANS,
        workers,
    );
    let scatter = t3.elapsed().as_secs_f64();
    let scatter_err_pct = (scattered.cpi() - exact.cpi()).abs() / exact.cpi() * 100.0;
    let _ = std::fs::remove_dir_all(&dir);

    vec![TraceScaleRow {
        workload: w.name.clone(),
        records,
        seg_records: SEG_RECORDS,
        monolithic_ms: 0.0,
        segmented_ms: seg * 1e3,
        pipelined_ms: pipe * 1e3,
        replay1_ms: replay1 * 1e3,
        scatter_ms: scatter * 1e3,
        workers: workers as u64,
        scatter_err_pct,
        speedup: replay1 / scatter.max(1e-12),
        mips: records as f64 / pipe.max(1e-12) / 1e6,
    }]
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let positive: Vec<f64> = values.filter(|&m| m > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = positive.iter().map(|m| m.ln()).sum();
    (log_sum / positive.len() as f64).exp()
}

/// Geometric mean of the pipelined Minst/s across cells.
pub fn geomean_mips(rows: &[TraceScaleRow]) -> f64 {
    geomean(rows.iter().map(|r| r.mips))
}

/// Geometric mean of the single-worker-over-parallel speedups.
pub fn geomean_speedup(rows: &[TraceScaleRow]) -> f64 {
    geomean(rows.iter().map(|r| r.speedup))
}

/// The process's resident-set high-water mark (`VmHWM`), in bytes.
/// `None` off Linux or if `/proc` is unreadable.
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Renders the aligned table.
pub fn render(rows: &[TraceScaleRow], large: bool) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let seg = rows.first().map_or(SEG_RECORDS, |r| r.seg_records);
    if large {
        let _ = writeln!(
            out,
            "Trace-scale cells (large tier, seg {seg} records): 1-worker stream replay vs scatter"
        );
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>10} {:>10} {:>11} {:>11} {:>7} {:>7} {:>8} {:>8}",
            "workload",
            "records",
            "seg ms",
            "pipe ms",
            "1-work ms",
            "scatter ms",
            "workers",
            "err %",
            "speedup",
            "Minst/s"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{:<12} {:>12} {:>10.1} {:>10.1} {:>11.1} {:>11.1} {:>7} {:>7.2} {:>8.2} {:>8.1}",
                r.workload,
                r.records,
                r.segmented_ms,
                r.pipelined_ms,
                r.replay1_ms,
                r.scatter_ms,
                r.workers,
                r.scatter_err_pct,
                r.speedup,
                r.mips
            );
        }
        let _ = writeln!(
            out,
            "geomean: {:.1} Minst/s pipelined, scatter speedup {:.2}x over one worker",
            geomean_mips(rows),
            geomean_speedup(rows)
        );
    } else {
        let _ = writeln!(
            out,
            "Trace-scale cells (quick tier, seg {seg} records): monolithic vs streamed modes"
        );
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
            "workload", "records", "mono ms", "seg ms", "pipe ms", "speedup", "Minst/s"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{:<20} {:>12} {:>12.1} {:>12.1} {:>12.1} {:>8.2} {:>10.1}",
                r.workload,
                r.records,
                r.monolithic_ms,
                r.segmented_ms,
                r.pipelined_ms,
                r.speedup,
                r.mips
            );
        }
        let _ = writeln!(
            out,
            "geomean: {:.1} Minst/s pipelined, speedup {:.2}x over one worker",
            geomean_mips(rows),
            geomean_speedup(rows)
        );
    }
    out
}

/// Encodes the cells as the `BENCH_trace_scale.json` document
/// (schema 1).
pub fn to_json(scale: Scale, large: bool, rows: &[TraceScaleRow], vm_hwm: Option<u64>) -> Value {
    let rows_json = rows
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("workload".into(), Value::Str(r.workload.clone())),
                ("records".into(), Value::Int(r.records)),
                ("seg_records".into(), Value::Int(r.seg_records)),
                ("monolithic_ms".into(), Value::Num(r.monolithic_ms)),
                ("segmented_ms".into(), Value::Num(r.segmented_ms)),
                ("pipelined_ms".into(), Value::Num(r.pipelined_ms)),
                ("replay1_ms".into(), Value::Num(r.replay1_ms)),
                ("scatter_ms".into(), Value::Num(r.scatter_ms)),
                ("workers".into(), Value::Int(r.workers)),
                ("scatter_err_pct".into(), Value::Num(r.scatter_err_pct)),
                ("speedup".into(), Value::Num(r.speedup)),
                ("mips".into(), Value::Num(r.mips)),
            ])
        })
        .collect();
    let mut fields = vec![
        ("schema".into(), Value::Int(1)),
        ("scale_den".into(), Value::Int(scale.den)),
        (
            "tier".into(),
            Value::Str(if large { "large" } else { "quick" }.into()),
        ),
        ("geomean_mips".into(), Value::Num(geomean_mips(rows))),
        ("geomean_speedup".into(), Value::Num(geomean_speedup(rows))),
    ];
    if let Some(hwm) = vm_hwm {
        fields.push(("vm_hwm_bytes".into(), Value::Int(hwm)));
    }
    fields.push(("rows".into(), Value::Arr(rows_json)));
    Value::Obj(fields)
}

/// Compares measured cells against a committed baseline document.
///
/// Returns `(current, baseline)` geometric mean Minst/s on success. A
/// baseline written at a different tier is a configuration error, not
/// a regression.
///
/// # Errors
///
/// Fails on a malformed or tier-mismatched baseline, or a geometric
/// mean more than `max_drop` below it.
pub fn check_against_baseline(
    rows: &[TraceScaleRow],
    large: bool,
    baseline: &Value,
    max_drop: f64,
) -> Result<(f64, f64), String> {
    let tier = if large { "large" } else { "quick" };
    match baseline.get("tier").and_then(Value::as_str) {
        Some(t) if t == tier => {}
        other => {
            return Err(format!(
                "baseline tier {other:?} does not match the measured tier {tier:?}"
            ))
        }
    }
    let base = baseline
        .get("geomean_mips")
        .and_then(Value::as_f64)
        .ok_or_else(|| "baseline missing geomean_mips".to_owned())?;
    if base <= 0.0 {
        return Err(format!("baseline geomean_mips not positive: {base}"));
    }
    let cur = geomean_mips(rows);
    let floor = base * (1.0 - max_drop);
    if cur < floor {
        return Err(format!(
            "trace-scale throughput regressed: geomean {cur:.1} Minst/s is below \
             {floor:.1} ({:.0}% of baseline {base:.1})",
            (1.0 - max_drop) * 100.0
        ));
    }
    Ok((cur, base))
}

/// The large tier's parallel gate: the scatter cell at ≥2 workers must
/// beat the single worker replaying the same stream.
///
/// # Errors
///
/// Fails when the geometric-mean speedup is not above 1.0.
pub fn check_speedup(rows: &[TraceScaleRow]) -> Result<f64, String> {
    let s = geomean_speedup(rows);
    if s > 1.0 {
        Ok(s)
    } else {
        Err(format!(
            "segment-parallel execution did not beat one worker: geomean speedup {s:.3}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed scale so the test matrix stays suite-sized; the real
    /// tiers run through `repro bench-trace-scale`.
    fn tiny() -> Scale {
        Scale {
            den: 16,
            warm_tenths: 2,
            measure_tenths: 1,
            seed: 11,
        }
    }

    #[test]
    fn three_modes_agree_and_rows_are_well_formed() {
        // `measure` itself asserts byte-identity across the modes.
        let rows = measure(tiny());
        assert_eq!(rows.len(), 4, "one row per workload preset");
        for r in &rows {
            assert!(r.records > 0 && r.mips > 0.0 && r.speedup > 0.0);
            assert!(r.monolithic_ms > 0.0, "quick tier times monolithic");
            assert_eq!(r.workers, 0, "quick tier has no scatter cell");
        }
    }

    #[test]
    fn segmented_serial_splits_at_the_requested_boundary() {
        let scale = tiny();
        let w = &scale.workloads()[0];
        let spec = scale.run_spec(w, scale.machine());
        let program = Arc::new(WorkloadProgram::build(&spec.workload));
        let pf = prefetcher(scale);
        let reference = spec.run(&pf);
        // An awkward prime segment length still replays exactly.
        let r = run_segmented_serial(&spec, program, 4_999, &pf);
        assert_eq!(r, reference);
    }

    #[test]
    fn disk_stream_replay_is_exact_and_scatter_is_close() {
        let scale = tiny();
        let w = &scale.workloads()[0];
        let spec = scale.run_spec(w, scale.machine());
        let program = Arc::new(WorkloadProgram::build(&spec.workload));
        let pf = prefetcher(scale);
        let reference = spec.run(&pf);
        let dir =
            std::env::temp_dir().join(format!("ebcp-trace-scale-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch store dir");
        let job = Job::new(spec.clone(), pf.clone());
        // ~9 blocks at this scale; the measure window spans the last
        // few, so scatter gets a multi-task list.
        let seg = 20_000;
        write_stream(&spec, Arc::clone(&program), seg, &dir, &job);

        let stream = open_stream(&dir, &job);
        let mut one = stream.reopen().expect("reopen validated stream");
        let replayed = run_preresolved_blocks(&spec, one.blocks(), &pf);
        assert_eq!(replayed, reference, "disk round-trip replay is exact");

        let block_records = stream.block_records();
        assert_eq!(block_records.iter().sum::<u64>(), stream.records());
        let scattered = run_scatter_spans_with(
            &spec,
            &block_records,
            || {
                let mut s = stream.reopen().expect("reopen validated stream");
                move |k: usize| s.block(k).expect("validated stream read")
            },
            &pf,
            SCATTER_OVERLAP,
            SCATTER_SPANS,
            2,
        );
        let rel = (scattered.cpi() - reference.cpi()).abs() / reference.cpi();
        assert!(
            rel < 0.10,
            "scatter CPI within tolerance at this tiny scale: {:.2}% off",
            rel * 100.0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_round_trips_the_gates() {
        let rows = vec![TraceScaleRow {
            workload: "database".into(),
            records: 1_000_000,
            seg_records: SEG_RECORDS,
            monolithic_ms: 100.0,
            segmented_ms: 110.0,
            pipelined_ms: 105.0,
            replay1_ms: 90.0,
            scatter_ms: 30.0,
            workers: 4,
            scatter_err_pct: 0.4,
            speedup: 90.0 / 30.0,
            mips: 1_000_000.0 / 0.105 / 1e6,
        }];
        let doc = to_json(Scale::quick(), false, &rows, Some(123 << 20));
        assert_eq!(doc.get("tier").unwrap().as_str(), Some("quick"));
        assert_eq!(doc.get("vm_hwm_bytes").unwrap().as_u64(), Some(123 << 20));
        let row = &doc.get("rows").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("workers").unwrap().as_u64(), Some(4));
        assert_eq!(row.get("scatter_ms").unwrap().as_f64(), Some(30.0));
        let (cur, base) = check_against_baseline(&rows, false, &doc, 0.25).unwrap();
        assert!((cur - base).abs() < 1e-9, "self-comparison passes");
        // A tier mismatch is an error, not a silent pass.
        assert!(check_against_baseline(&rows, true, &doc, 0.25).is_err());
        // A 25% drop gate trips when the baseline is inflated.
        let mut inflated = rows.clone();
        for r in &mut inflated {
            r.mips /= 2.0;
        }
        assert!(check_against_baseline(&inflated, false, &doc, 0.25).is_err());
        assert!(check_speedup(&rows).is_ok());
        let slow = vec![TraceScaleRow {
            speedup: 0.9,
            ..rows[0].clone()
        }];
        assert!(check_speedup(&slow).is_err());
    }

    #[test]
    fn vm_hwm_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let hwm = vm_hwm_bytes().expect("/proc/self/status has VmHWM");
            assert!(hwm > 1 << 20, "a test process surely exceeds 1 MiB");
        }
    }
}
