//! CLI glue for the sweep service: `repro serve|submit|status|shutdown|
//! sweep|bench-serve`.
//!
//! Each command returns a process exit code rather than calling
//! `exit()` itself, so `repro` keeps one place that terminates. Codes:
//! `0` success, `1` failed sweep cells, `3` daemon unreachable or the
//! sweep was refused after every retry (`2` stays the usage-error code,
//! assigned by `repro` itself).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ebcp_harness::{write_doc, Harness, HarnessConfig, QueueConfig, Scale, Value};
use ebcp_serve::{Client, Server, ServerConfig, SweepOutcome, SweepSpec};

/// The sweep grid named on the command line.
#[derive(Debug, Clone)]
pub struct GridArgs {
    /// Comma-separated workload preset names; empty means all four.
    pub workloads: Vec<String>,
    /// Comma-separated prefetcher names; empty means `none,ebcp`.
    pub prefetchers: Vec<String>,
    /// CMP core counts (`--cores`); empty means single-core only.
    pub cores: Vec<u64>,
    /// Experiment scale.
    pub scale: Scale,
}

impl GridArgs {
    /// Resolves defaults into a concrete sweep.
    pub fn to_spec(&self) -> SweepSpec {
        let workloads = if self.workloads.is_empty() {
            vec![
                "database".into(),
                "tpcw".into(),
                "specjbb2005".into(),
                "specjappserver2004".into(),
            ]
        } else {
            self.workloads.clone()
        };
        let prefetchers = if self.prefetchers.is_empty() {
            vec!["none".into(), "ebcp".into()]
        } else {
            self.prefetchers.clone()
        };
        SweepSpec {
            workloads,
            prefetchers,
            cores: self.cores.clone(),
            scale: self.scale,
        }
    }
}

/// Splits a `--workloads a,b,c` style list.
pub fn parse_list(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_owned)
        .collect()
}

/// Parses a byte-count argument: a plain integer, optionally suffixed
/// `k`/`m`/`g` (binary multiples, case-insensitive) — `--mem-budget
/// 512m`.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, shift) = match s.as_bytes().last()? {
        b'k' | b'K' => (&s[..s.len() - 1], 10),
        b'm' | b'M' => (&s[..s.len() - 1], 20),
        b'g' | b'G' => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.trim().parse().ok()?;
    n.checked_shl(shift)
}

/// Memory/storage knobs shared by every command that builds a harness:
/// the per-process trace budget (which drives the materialize-vs-
/// stream decision) and whether generated traces are persisted in the
/// store's segmented trace cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemArgs {
    /// `--mem-budget`; `None` keeps the harness default.
    pub budget_bytes: Option<u64>,
    /// `--trace-store`.
    pub trace_store: bool,
}

fn harness(jobs: usize, store_dir: Option<PathBuf>, mem: MemArgs) -> Harness {
    Harness::new(HarnessConfig {
        jobs,
        store_dir,
        progress: false,
        mem_budget_bytes: mem
            .budget_bytes
            .unwrap_or(HarnessConfig::default().mem_budget_bytes),
        trace_store: mem.trace_store,
        ..HarnessConfig::default()
    })
}

/// `repro serve`: bind, print the endpoints, and run until SIGTERM,
/// SIGINT or a client's `shutdown` command. Queued jobs drain before
/// exit.
pub fn cmd_serve(
    addr: Option<String>,
    unix: Option<PathBuf>,
    jobs: usize,
    depth: usize,
    store_dir: Option<PathBuf>,
    mem: MemArgs,
) -> i32 {
    let cfg = ServerConfig {
        // An explicit --unix with no --addr serves the socket alone.
        tcp: match (&addr, &unix) {
            (Some(a), _) => Some(a.clone()),
            (None, Some(_)) => None,
            (None, None) => ServerConfig::default().tcp,
        },
        unix,
        queue: QueueConfig {
            depth,
            ..QueueConfig::default()
        },
    };
    let server = match Server::bind(std::sync::Arc::new(harness(jobs, store_dir, mem)), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind: {e}");
            return 3;
        }
    };
    if let Some(a) = server.tcp_addr() {
        eprintln!("# listening on tcp:{a}");
    }
    eprintln!("# serving; stop with SIGTERM or `repro shutdown`");
    match server.run() {
        Ok(()) => {
            eprintln!("# drained and stopped");
            0
        }
        Err(e) => {
            eprintln!("error: server failed: {e}");
            3
        }
    }
}

fn connect(addr: &str) -> Result<Client, i32> {
    Client::connect(addr).map_err(|e| {
        eprintln!("error: could not connect to {addr}: {e}");
        3
    })
}

fn narrate(ev: &Value) {
    let kind = ev.get("kind").and_then(Value::as_str).unwrap_or("");
    let label = ev.get("label").and_then(Value::as_str).unwrap_or("?");
    match kind {
        "job_started" => eprintln!("# started  {label}"),
        "job_finished" => {
            let ms = ev.get("wall_ms").and_then(Value::as_u64).unwrap_or(0);
            eprintln!("# finished {label} ({ms} ms)");
        }
        "job_retried" => eprintln!("# retried  {label}"),
        "job_failed" => eprintln!("# FAILED   {label}"),
        "cache_quarantined" => {
            let path = ev.get("path").and_then(Value::as_str).unwrap_or("?");
            eprintln!("# quarantined cache entry {path}");
        }
        _ => {}
    }
}

/// `repro submit`: send the sweep, stream progress to stderr, write the
/// assembled `results.json` (byte-identical to a local `repro sweep` of
/// the same grid) to `out`. Backpressure refusals are retried up to
/// `retries` times, honouring the daemon's back-off hint.
pub fn cmd_submit(addr: &str, spec: &SweepSpec, out: &Path, retries: u32) -> i32 {
    let mut client = match connect(addr) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let mut attempt = 0;
    loop {
        let outcome = match client.submit(spec, |ev| {
            if ev.get("event").and_then(Value::as_str) == Some("telemetry") {
                narrate(ev);
            }
        }) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: submit failed: {e}");
                return 3;
            }
        };
        match outcome {
            SweepOutcome::Done { results, failed } => {
                if let Err(e) = write_doc(out, &results) {
                    eprintln!("error: could not write {}: {e}", out.display());
                    return 3;
                }
                eprintln!("# results: {}", out.display());
                if failed > 0 {
                    eprintln!("error: {failed} cell(s) failed");
                    return 1;
                }
                return 0;
            }
            SweepOutcome::Rejected {
                reason,
                retry_after_ms,
            } => {
                if attempt >= retries {
                    eprintln!("error: sweep refused after {attempt} retr(ies): {reason}");
                    return 3;
                }
                attempt += 1;
                eprintln!("# refused ({reason}); retry {attempt}/{retries} in {retry_after_ms} ms");
                std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
            }
        }
    }
}

/// Renders a byte count with a binary-unit suffix.
fn human_bytes(n: u64) -> String {
    match n {
        0..=1023 => format!("{n} B"),
        _ if n < (1 << 20) => format!("{:.1} KiB", n as f64 / f64::from(1 << 10)),
        _ if n < (1 << 30) => format!("{:.1} MiB", n as f64 / f64::from(1 << 20)),
        _ => format!("{:.2} GiB", n as f64 / f64::from(1 << 30)),
    }
}

/// Renders the on-disk footprint lines shared by local and daemon
/// status: one line per store class plus a total.
fn print_footprint(fp: &ebcp_harness::StoreFootprint) {
    let class = |name: &str, c: &ebcp_harness::StoreClassFootprint| {
        let mut line = format!(
            "store {name:8} {} file(s), {}",
            c.files,
            human_bytes(c.bytes)
        );
        if c.segments > 0 {
            line.push_str(&format!(", {} segment(s)", c.segments));
        }
        if c.corrupt > 0 {
            line.push_str(&format!(
                ", {} quarantined ({})",
                c.corrupt,
                human_bytes(c.quarantined_bytes)
            ));
        }
        println!("{line}");
    };
    class("results", &fp.results);
    class("preres", &fp.preres);
    class("traces", &fp.traces);
    let mut total = format!("store total    {}", human_bytes(fp.total_bytes()));
    if fp.quarantined_bytes() > 0 {
        total.push_str(&format!(
            " (+{} quarantined)",
            human_bytes(fp.quarantined_bytes())
        ));
    }
    println!("{total}");
}

/// `repro status --addr ADDR`: queue snapshot (and the daemon store's
/// footprint, when it has one) on stdout.
pub fn cmd_status(addr: &str) -> i32 {
    let mut client = match connect(addr) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.status() {
        Ok(st) => {
            println!(
                "queued {} / depth {}, running {}, clients {}, completed {}, warm streams {}",
                st.queued, st.depth, st.running, st.clients, st.completed, st.warm_streams
            );
            if let Some(fp) = &st.store {
                print_footprint(fp);
            }
            0
        }
        Err(e) => {
            eprintln!("error: status failed: {e}");
            3
        }
    }
}

/// `repro status` with no `--addr`: report the local store's on-disk
/// footprint — cached results, pre-resolved streams and segmented
/// traces with their segment counts.
pub fn cmd_status_local(store_dir: Option<&Path>) -> i32 {
    let Some(dir) = store_dir else {
        eprintln!("error: status needs --addr for a daemon or a store (drop --no-cache)");
        return 2;
    };
    if !dir.is_dir() {
        println!(
            "store {} does not exist yet (no cached entries)",
            dir.display()
        );
        return 0;
    }
    println!("store {}", dir.display());
    print_footprint(&ebcp_harness::store_footprint(dir));
    0
}

/// `repro shutdown`: ask the daemon to drain and exit.
pub fn cmd_shutdown(addr: &str) -> i32 {
    let mut client = match connect(addr) {
        Ok(c) => c,
        Err(code) => return code,
    };
    match client.shutdown() {
        Ok(()) => {
            eprintln!("# daemon shutting down");
            0
        }
        Err(e) => {
            eprintln!("error: shutdown failed: {e}");
            3
        }
    }
}

/// `repro sweep`: the same grid run in-process — the local half of the
/// byte-identity contract `repro submit` is tested against. A `cores`
/// axis adds multi-core CMP cells through [`Harness::run_cmp_outcomes`]
/// (the discrete-event engine), assembled through the same
/// `results_doc_cmp` renderer the service client uses.
pub fn cmd_sweep_local(
    spec: &SweepSpec,
    jobs: usize,
    store_dir: Option<PathBuf>,
    mem: MemArgs,
    out: &Path,
) -> i32 {
    let (jobs_vec, cmp_vec) = match spec.jobs().and_then(|j| Ok((j, spec.cmp_jobs()?))) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let h = harness(jobs, store_dir, mem);
    let outcomes = h.run_outcomes(&jobs_vec);
    let mut seen = std::collections::HashSet::new();
    let unique_cmp: Vec<ebcp_harness::CmpJob> = cmp_vec
        .iter()
        .filter(|j| seen.insert(j.id()))
        .cloned()
        .collect();
    let cmp_outcomes = h.run_cmp_outcomes(&unique_cmp);
    let cmp_rows: Vec<ebcp_harness::CmpResultRow> = unique_cmp
        .iter()
        .zip(&cmp_outcomes)
        .map(|(job, outcome)| ebcp_harness::CmpResultRow {
            id: job.id(),
            cell: job.spec.name.clone(),
            prefetcher: job.pf.name().to_string(),
            cores: job.cores() as u64,
            outcome: outcome.clone(),
        })
        .collect();
    let failed = outcomes.iter().filter(|o| o.is_failed()).count()
        + cmp_outcomes.iter().filter(|o| o.is_failed()).count();
    let doc =
        ebcp_harness::results_doc_cmp(jobs_vec.len() + cmp_vec.len(), &h.result_rows(), &cmp_rows);
    if let Err(e) = write_doc(out, &doc) {
        eprintln!("error: could not write {}: {e}", out.display());
        return 3;
    }
    eprintln!("# results: {}", out.display());
    eprintln!("# {}", h.summary().render());
    if failed > 0 {
        eprintln!("error: {failed} cell(s) failed");
        return 1;
    }
    0
}

/// `repro bench-serve`: measures warm-cache submit latency against an
/// in-process daemon and writes `<out-dir>/BENCH_serve.json`.
///
/// The sweep is submitted once cold (populating the memo), then
/// `WARM_SUBMITS` more times; each warm submit performs zero
/// simulations, so its wall time is pure service overhead — queueing,
/// memo lookups, streaming and client-side reassembly.
pub fn bench_serve(out_dir: &Path, scale: Scale) -> i32 {
    const WARM_SUBMITS: usize = 30;
    let spec = SweepSpec {
        workloads: vec!["database".into(), "tpcw".into()],
        prefetchers: vec!["none".into(), "stream".into()],
        cores: Vec::new(),
        scale,
    };
    let server = match Server::bind(
        std::sync::Arc::new(harness(0, None, MemArgs::default())),
        ServerConfig {
            tcp: Some("127.0.0.1:0".into()),
            unix: None,
            queue: QueueConfig::default(),
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind: {e}");
            return 3;
        }
    };
    let addr = format!(
        "tcp:{}",
        server.tcp_addr().expect("server bound a tcp listener")
    );
    let runner = {
        let s = std::sync::Arc::clone(&server);
        std::thread::spawn(move || s.run())
    };

    let mut client = match connect(&addr) {
        Ok(c) => c,
        Err(code) => return code,
    };
    let submit_once = |client: &mut Client| -> Result<Duration, i32> {
        let t = Instant::now();
        match client.submit(&spec, |_| {}) {
            Ok(SweepOutcome::Done { failed: 0, .. }) => Ok(t.elapsed()),
            Ok(other) => {
                eprintln!("error: bench sweep did not complete cleanly: {other:?}");
                Err(1)
            }
            Err(e) => {
                eprintln!("error: bench submit failed: {e}");
                Err(3)
            }
        }
    };

    let cold = match submit_once(&mut client) {
        Ok(d) => d,
        Err(code) => return code,
    };
    let executed = server.service().harness().summary().executed;
    let mut warm_ms: Vec<f64> = Vec::with_capacity(WARM_SUBMITS);
    for _ in 0..WARM_SUBMITS {
        match submit_once(&mut client) {
            Ok(d) => warm_ms.push(d.as_secs_f64() * 1e3),
            Err(code) => return code,
        }
    }
    if server.service().harness().summary().executed != executed {
        eprintln!("error: warm submits re-simulated cells; the memo is broken");
        return 1;
    }
    let _ = client.shutdown();
    let _ = runner.join();

    warm_ms.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| warm_ms[((warm_ms.len() - 1) as f64 * p).round() as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!(
        "bench-serve: {} cells; cold {:.1} ms, warm submit p50 {p50:.2} ms / p99 {p99:.2} ms \
         over {WARM_SUBMITS} submits",
        spec.workloads.len() * spec.prefetchers.len(),
        cold.as_secs_f64() * 1e3,
    );
    let doc = Value::Obj(vec![
        (
            "scale".into(),
            Value::Obj(vec![
                ("den".into(), Value::Int(scale.den)),
                ("warm_tenths".into(), Value::Int(scale.warm_tenths)),
                ("measure_tenths".into(), Value::Int(scale.measure_tenths)),
                ("seed".into(), Value::Int(scale.seed)),
            ]),
        ),
        (
            "cells".into(),
            Value::Int((spec.workloads.len() * spec.prefetchers.len()) as u64),
        ),
        ("warm_submits".into(), Value::Int(WARM_SUBMITS as u64)),
        ("cold_ms".into(), Value::Num(cold.as_secs_f64() * 1e3)),
        ("warm_p50_ms".into(), Value::Num(p50)),
        ("warm_p99_ms".into(), Value::Num(p99)),
    ]);
    let path = out_dir.join("BENCH_serve.json");
    match write_doc(&path, &doc) {
        Ok(()) => {
            eprintln!("# wrote {}", path.display());
            0
        }
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            3
        }
    }
}
