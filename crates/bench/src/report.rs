//! Table rendering for the experiment drivers.

use std::fmt::Write as _;

use crate::experiments::{
    AblationPoint, BwPoint, CmpBwPoint, CmpPoint, CmpPointRow, SweepPoint, Table1Row,
};

fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Renders Table 1 with the paper's values beside the measured ones.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 1: baseline processor without prefetching (measured | paper)"
    );
    let _ = writeln!(
        s,
        "{:<22} {:>15} {:>15} {:>15} {:>15} {:>10}",
        "workload", "CPI", "epochs/1k", "L2$ inst MR", "L2$ load MR", "sec MR"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:>7.2} | {:<5.2} {:>7.2} | {:<5.2} {:>7.2} | {:<5.2} {:>7.2} | {:<5.2} {:>10.2}",
            r.workload,
            r.cpi,
            r.paper[0],
            r.epi,
            r.paper[1],
            r.inst_mr,
            r.paper[2],
            r.load_mr,
            r.paper[3],
            r.sec_mr
        );
    }
    s
}

/// Renders a Figure 4-style sweep (improvement per swept value).
pub fn render_sweep_improvement(title: &str, xlabel: &str, rows: &[SweepPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let mut xs: Vec<u64> = rows.iter().map(|r| r.x).collect();
    xs.sort_unstable();
    xs.dedup();
    let _ = write!(s, "{:<22}", format!("workload \\ {xlabel}"));
    for x in &xs {
        let _ = write!(s, " {:>9}", x);
    }
    let _ = writeln!(s);
    let mut names: Vec<&str> = rows.iter().map(|r| r.workload.as_str()).collect();
    names.dedup();
    for name in names {
        let _ = write!(s, "{:<22}", name);
        for x in &xs {
            if let Some(r) = rows.iter().find(|r| r.workload == name && r.x == *x) {
                let _ = write!(s, " {:>9}", pct(r.improvement));
            } else {
                let _ = write!(s, " {:>9}", "-");
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// Renders the Figure 5 secondary metrics (EPI reduction, residual miss
/// rates, coverage, accuracy) for every sweep point.
pub fn render_sweep_details(title: &str, xlabel: &str, rows: &[SweepPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let _ = writeln!(
        s,
        "{:<22} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "workload", xlabel, "epiRed", "cover", "accur", "instMR", "loadMR"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:>9} {:>8} {:>8} {:>8} {:>9.2} {:>9.2}",
            r.workload,
            r.x,
            pct(r.epi_reduction),
            pct(r.coverage),
            pct(r.accuracy),
            r.inst_mr,
            r.load_mr
        );
    }
    s
}

/// Renders the Figure 8 bandwidth-sensitivity matrix.
pub fn render_fig8(rows: &[BwPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 8: improvement vs prefetch degree at 3.2 / 6.4 / 9.6 GB/s read bandwidth"
    );
    let mut degrees: Vec<u64> = rows.iter().map(|r| r.degree).collect();
    degrees.sort_unstable();
    degrees.dedup();
    let mut keys: Vec<(String, &'static str)> = Vec::new();
    for r in rows {
        let k = (r.workload.clone(), r.bandwidth);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let _ = write!(s, "{:<32}", "workload @ GB/s");
    for d in &degrees {
        let _ = write!(s, " {:>9}", format!("d={d}"));
    }
    let _ = writeln!(s, " {:>9}", "dropped");
    for (w, bw) in keys {
        let _ = write!(s, "{:<32}", format!("{w} @ {bw}"));
        let mut dropped = 0;
        for d in &degrees {
            if let Some(r) = rows
                .iter()
                .find(|r| r.workload == w && r.bandwidth == bw && r.degree == *d)
            {
                let _ = write!(s, " {:>9}", pct(r.improvement));
                dropped = dropped.max(r.dropped);
            }
        }
        let _ = writeln!(s, " {:>9}", dropped);
    }
    s
}

/// Renders the Figure 9 comparison, with the paper's quoted numbers.
pub fn render_fig9(rows: &[CmpPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 9: prefetcher comparison (improvement over no prefetching)"
    );
    let _ = writeln!(
        s,
        "{:<22} {:<13} {:>9} {:>8} {:>8} {:>9}",
        "workload", "prefetcher", "improve", "cover", "accur", "paper"
    );
    for r in rows {
        let paper = r.paper.map(pct).unwrap_or_else(|| "-".to_owned());
        let _ = writeln!(
            s,
            "{:<22} {:<13} {:>9} {:>8} {:>8} {:>9}",
            r.workload,
            r.prefetcher,
            pct(r.improvement),
            pct(r.coverage),
            pct(r.accuracy),
            paper
        );
    }
    s
}

/// Renders the ablation study.
pub fn render_ablation(rows: &[AblationPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Ablations: tuned EBCP with individual design choices disabled"
    );
    let _ = writeln!(
        s,
        "{:<22} {:<24} {:>9} {:>8}",
        "workload", "variant", "improve", "cover"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<22} {:<24} {:>9} {:>8}",
            r.workload,
            r.variant,
            pct(r.improvement),
            pct(r.coverage)
        );
    }
    s
}

/// Renders the CMP interleaving study.
pub fn render_cmp(rows: &[CmpPointRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "CMP interleaving (§3.3.1 / §6): disjoint database mixes over a shared L2"
    );
    let _ = writeln!(
        s,
        "{:<14} {:>6} {:>9} {:>8}",
        "prefetcher", "cores", "improve", "cover"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<14} {:>6} {:>9} {:>8}",
            r.prefetcher,
            r.cores,
            pct(r.improvement),
            pct(r.coverage)
        );
    }
    s
}

/// Renders the CMP bandwidth-scenario sweep.
pub fn render_cmp_bw(rows: &[CmpBwPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "CMP bandwidth scenarios (Figure 8 under shared-bus contention): \
         database mixes at 3.2 / 6.4 / 9.6 GB/s read bandwidth"
    );
    let _ = writeln!(
        s,
        "{:<8} {:>6} {:<14} {:>9} {:>9}",
        "GB/s", "cores", "prefetcher", "improve", "dropped"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>6} {:<14} {:>9} {:>9}",
            r.bandwidth,
            r.cores,
            r.prefetcher,
            pct(r.improvement),
            r.dropped
        );
    }
    s
}

/// CSV dump of a sweep for plotting.
pub fn sweep_csv(rows: &[SweepPoint]) -> String {
    let mut s =
        String::from("workload,x,improvement,epi_reduction,coverage,accuracy,inst_mr,load_mr\n");
    for r in rows {
        let _ = writeln!(
            s,
            "{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            r.workload,
            r.x,
            r.improvement,
            r.epi_reduction,
            r.coverage,
            r.accuracy,
            r.inst_mr,
            r.load_mr
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(w: &str, x: u64, imp: f64) -> SweepPoint {
        SweepPoint {
            workload: w.to_owned(),
            x,
            improvement: imp,
            epi_reduction: imp,
            coverage: 0.5,
            accuracy: 0.3,
            inst_mr: 1.0,
            load_mr: 2.0,
        }
    }

    #[test]
    fn sweep_table_contains_values() {
        let rows = vec![point("database", 1, 0.07), point("database", 2, 0.14)];
        let s = render_sweep_improvement("Fig 4", "degree", &rows);
        assert!(s.contains("7.0%"));
        assert!(s.contains("14.0%"));
        assert!(s.contains("database"));
    }

    #[test]
    fn table1_renders_paper_values() {
        let rows = vec![Table1Row {
            workload: "database".into(),
            cpi: 3.1,
            epi: 4.0,
            inst_mr: 1.0,
            load_mr: 6.0,
            sec_mr: 0.42,
            paper: [3.27, 4.07, 1.00, 6.23],
        }];
        let s = render_table1(&rows);
        assert!(s.contains("3.27"));
        assert!(s.contains("database"));
        assert!(s.contains("sec MR"));
        assert!(s.contains("0.42"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let s = sweep_csv(&[point("w", 1, 0.1)]);
        assert!(s.starts_with("workload,"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn fig9_renders_dash_for_missing_paper() {
        let rows = vec![CmpPoint {
            workload: "database".into(),
            prefetcher: "stream".into(),
            improvement: 0.01,
            coverage: 0.01,
            accuracy: 0.2,
            paper: None,
        }];
        let s = render_fig9(&rows);
        assert!(s.contains('-'));
    }
}
