//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <table1|fig4|fig5|fig6|fig7|fig8|fig9|ablation|cmp|all> [--scale quick|standard|full] [--csv]
//! ```

use std::time::Instant;

use ebcp_bench::{experiments, report, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig4|fig5|fig6|fig7|fig8|fig9|ablation|cmp|all> \
         [--scale quick|standard|full] [--csv]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what: Option<String> = None;
    let mut scale = Scale::standard();
    let mut csv = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale::parse(v).unwrap_or_else(|| usage());
            }
            "--csv" => csv = true,
            s if what.is_none() && !s.starts_with('-') => what = Some(s.to_owned()),
            _ => usage(),
        }
    }
    let what = what.unwrap_or_else(|| usage());
    let t0 = Instant::now();
    eprintln!(
        "# scale 1/{} machine ({} KB L2), warm-up {} tenths / measure {} tenths of the recurrence interval",
        scale.den,
        (2 << 20) / scale.den / 1024,
        scale.warm_tenths,
        scale.measure_tenths,
    );

    let run_one = |name: &str| match name {
        "table1" => {
            let rows = experiments::table1(scale);
            print!("{}", report::render_table1(&rows));
        }
        "fig4" => {
            let rows = experiments::fig4_5(scale);
            if csv {
                print!("{}", report::sweep_csv(&rows));
            } else {
                print!(
                    "{}",
                    report::render_sweep_improvement(
                        "Figure 4: improvement vs prefetch degree (idealized table)",
                        "degree",
                        &rows
                    )
                );
            }
        }
        "fig5" => {
            let rows = experiments::fig4_5(scale);
            if csv {
                print!("{}", report::sweep_csv(&rows));
            } else {
                print!(
                    "{}",
                    report::render_sweep_details(
                        "Figure 5: EPI reduction, residual miss rates, coverage and accuracy vs degree",
                        "degree",
                        &rows
                    )
                );
            }
        }
        "fig6" => {
            let rows = experiments::fig6(scale);
            if csv {
                print!("{}", report::sweep_csv(&rows));
            } else {
                print!(
                    "{}",
                    report::render_sweep_improvement(
                        &format!(
                            "Figure 6: improvement vs correlation-table entries \
                             (multiply by {} for the paper-equivalent size)",
                            scale.den
                        ),
                        "entries",
                        &rows
                    )
                );
            }
        }
        "fig7" => {
            let rows = experiments::fig7(scale);
            if csv {
                print!("{}", report::sweep_csv(&rows));
            } else {
                print!(
                    "{}",
                    report::render_sweep_improvement(
                        "Figure 7: improvement vs prefetch-buffer entries \
                         (64 = the tuned EBCP; paper: 23/13/31/26%)",
                        "buffer",
                        &rows
                    )
                );
            }
        }
        "fig8" => {
            let rows = experiments::fig8(scale);
            print!("{}", report::render_fig8(&rows));
        }
        "fig9" => {
            let rows = experiments::fig9(scale);
            print!("{}", report::render_fig9(&rows));
        }
        "ablation" => {
            let rows = experiments::ablation(scale);
            print!("{}", report::render_ablation(&rows));
        }
        "cmp" => {
            let rows = experiments::cmp_interleaving(scale, &[1, 2, 4]);
            print!("{}", report::render_cmp(&rows));
        }
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    };

    if what == "all" {
        for name in ["table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation", "cmp"] {
            run_one(name);
            println!();
        }
    } else {
        run_one(&what);
    }
    eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
}
