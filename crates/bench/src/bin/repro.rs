//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <table1|fig4|fig5|fig6|fig7|fig8|fig9|ablation|cmp|cmp-bw|all|bench-throughput>
//!       [--scale quick|standard|full] [--csv] [--jobs N] [--cores 1,2,4]
//!       [--out-dir DIR] [--json] [--no-cache] [--keep-going]
//!       [--check-baseline FILE] [--event-mix]
//! repro serve   [--addr HOST:PORT] [--unix PATH] [--jobs N] [--depth N]
//!               [--out-dir DIR] [--no-cache]
//! repro submit  --addr ADDR [--workloads a,b] [--prefetchers x,y]
//!               [--cores 1,2,4] [--scale S] [--out FILE] [--retries N]
//! repro sweep   [--workloads a,b] [--prefetchers x,y] [--cores 1,2,4]
//!               [--scale S] [--jobs N] [--out FILE] [--out-dir DIR] [--no-cache]
//! repro status --addr ADDR
//! repro shutdown --addr ADDR
//! repro bench-serve [--scale S] [--out-dir DIR]
//! ```
//!
//! All simulations flow through one `Harness`: shared baselines run once
//! across figures, results are cached under `<out-dir>/jobs/` so re-runs
//! are incremental, and a consolidated `<out-dir>/results.json` is
//! written at the end. Tables go to stdout (byte-identical for any
//! `--jobs` count); progress and timing go to stderr.
//!
//! **Failure semantics.** A job that panics is retried once and, if it
//! fails again, recorded as failed without disturbing sibling jobs
//! (their results stay cached). By default (strict mode) the first
//! experiment containing a failed job stops the run; with
//! `--keep-going` the remaining experiments still execute. Either way
//! the process prints a failure summary naming every failed cell,
//! writes `results.json` (failed cells carry `"outcome": "failed"` and
//! the panic message), and exits with status 1. Exit status 2 means a
//! usage error; 0 means every job succeeded.
//!
//! **Service mode.** `repro serve` runs the sweep daemon (stop it with
//! SIGTERM or `repro shutdown`); `repro submit` sends a named grid to a
//! daemon and writes a `results.json` byte-identical to `repro sweep`
//! (the same grid run locally). Service commands exit `3` when the
//! daemon is unreachable or the sweep stays refused; `1` keeps meaning
//! failed cells.

use std::path::{Path, PathBuf};
use std::time::Instant;

use ebcp_bench::{
    experiments, report, service, throughput, tracescale, Harness, HarnessConfig, Scale,
};

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|fig4|fig5|fig6|fig7|fig8|fig9|ablation|cmp|cmp-bw|all|bench-throughput|bench-trace-scale> \
         [--scale quick|standard|full|large] [--csv] [--jobs N] [--cores 1,2,4] [--out-dir DIR] [--json] \
         [--no-cache] [--keep-going] [--check-baseline FILE] [--event-mix] \
         [--mem-budget BYTES[k|m|g]] [--trace-store]\n\
         \x20      repro <serve|submit|sweep|status|shutdown|bench-serve> \
         [--addr HOST:PORT] [--unix PATH] [--depth N] [--workloads a,b] [--prefetchers x,y] \
         [--cores 1,2,4] [--out FILE] [--retries N]\n\
         \x20      repro status  # no --addr: local store footprint under <out-dir>/jobs"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what: Option<String> = None;
    let mut scale = Scale::standard();
    let mut csv = false;
    let mut jobs = 0usize; // 0 = available_parallelism
    let mut out_dir = PathBuf::from("target/ebcp-results");
    let mut json = false;
    let mut no_cache = false;
    let mut keep_going = false;
    let mut check_baseline: Option<PathBuf> = None;
    let mut addr: Option<String> = None;
    let mut unix: Option<PathBuf> = None;
    let mut depth = 1024usize;
    let mut workloads: Vec<String> = Vec::new();
    let mut prefetchers: Vec<String> = Vec::new();
    let mut cores: Vec<u64> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut retries = 5u32;
    let mut event_mix = false;
    let mut mem_budget: Option<u64> = None;
    let mut trace_store = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                scale = Scale::parse(v).unwrap_or_else(|| usage());
            }
            "--csv" => csv = true,
            "--jobs" => {
                let v = it.next().unwrap_or_else(|| usage());
                jobs = v.parse().unwrap_or_else(|_| usage());
            }
            "--out-dir" => {
                let v = it.next().unwrap_or_else(|| usage());
                out_dir = PathBuf::from(v);
            }
            "--json" => json = true,
            "--no-cache" => no_cache = true,
            "--keep-going" => keep_going = true,
            "--check-baseline" => {
                let v = it.next().unwrap_or_else(|| usage());
                check_baseline = Some(PathBuf::from(v));
            }
            "--addr" => {
                let v = it.next().unwrap_or_else(|| usage());
                addr = Some(v.clone());
            }
            "--unix" => {
                let v = it.next().unwrap_or_else(|| usage());
                unix = Some(PathBuf::from(v));
            }
            "--depth" => {
                let v = it.next().unwrap_or_else(|| usage());
                depth = v.parse().unwrap_or_else(|_| usage());
            }
            "--workloads" => {
                let v = it.next().unwrap_or_else(|| usage());
                workloads = service::parse_list(v);
            }
            "--prefetchers" => {
                let v = it.next().unwrap_or_else(|| usage());
                prefetchers = service::parse_list(v);
            }
            "--cores" => {
                let v = it.next().unwrap_or_else(|| usage());
                cores = service::parse_list(v)
                    .iter()
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
                if cores.iter().any(|&n| n == 0 || n > 64) {
                    eprintln!("error: --cores values must be 1..=64");
                    std::process::exit(2);
                }
            }
            "--event-mix" => event_mix = true,
            "--mem-budget" => {
                let v = it.next().unwrap_or_else(|| usage());
                mem_budget = Some(service::parse_bytes(v).unwrap_or_else(|| usage()));
            }
            "--trace-store" => trace_store = true,
            "--out" => {
                let v = it.next().unwrap_or_else(|| usage());
                out = Some(PathBuf::from(v));
            }
            "--retries" => {
                let v = it.next().unwrap_or_else(|| usage());
                retries = v.parse().unwrap_or_else(|_| usage());
            }
            s if what.is_none() && !s.starts_with('-') => what = Some(s.to_owned()),
            _ => usage(),
        }
    }
    let what = what.unwrap_or_else(|| usage());
    let t0 = Instant::now();

    // Service commands: thin wrappers that exit with the returned code.
    {
        let grid = service::GridArgs {
            workloads,
            prefetchers,
            cores: cores.clone(),
            scale,
        };
        let store_dir = || {
            if no_cache {
                None
            } else {
                Some(out_dir.join("jobs"))
            }
        };
        let need_addr = || {
            addr.clone().unwrap_or_else(|| {
                eprintln!("error: {what} requires --addr (e.g. --addr 127.0.0.1:3772)");
                std::process::exit(2);
            })
        };
        let mem = service::MemArgs {
            budget_bytes: mem_budget,
            trace_store,
        };
        let code = match what.as_str() {
            "serve" => Some(service::cmd_serve(
                addr.clone(),
                unix.clone(),
                jobs,
                depth,
                store_dir(),
                mem,
            )),
            "submit" => {
                let out = out.clone().unwrap_or_else(|| out_dir.join("results.json"));
                Some(service::cmd_submit(
                    &need_addr(),
                    &grid.to_spec(),
                    &out,
                    retries,
                ))
            }
            "sweep" => {
                let out = out.clone().unwrap_or_else(|| out_dir.join("results.json"));
                Some(service::cmd_sweep_local(
                    &grid.to_spec(),
                    jobs,
                    store_dir(),
                    mem,
                    &out,
                ))
            }
            // With --addr, ask the daemon; without, report the local
            // store's on-disk footprint.
            "status" => Some(match &addr {
                Some(a) => service::cmd_status(a),
                None => service::cmd_status_local(store_dir().as_deref()),
            }),
            "shutdown" => Some(service::cmd_shutdown(&need_addr())),
            "bench-serve" => Some(service::bench_serve(&out_dir, scale)),
            _ => None,
        };
        if let Some(code) = code {
            eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
            std::process::exit(code);
        }
    }

    // Trace-scale cells are timing-sensitive too: same contract as
    // bench-throughput below. `--scale large` selects the ~100× tier
    // (streamed modes only); any other scale times all three modes.
    if what == "bench-trace-scale" {
        bench_trace_scale(scale, &out_dir, check_baseline.as_deref());
        eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
        return;
    }

    // Throughput is timing-sensitive: it bypasses the caching harness
    // (a memoized result has no wall time) and exits before the
    // results.json machinery below.
    if what == "bench-throughput" {
        if event_mix {
            // Histogram only: deterministic stream decomposition, no
            // timed cells — fast enough to run on every curiosity.
            print!(
                "{}",
                throughput::render_event_mix(&throughput::event_mix(scale))
            );
        } else {
            bench_throughput(scale, &out_dir, check_baseline.as_deref());
        }
        eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());
        return;
    }

    // Cached results are keyed by job content (workload, scale, machine,
    // prefetcher), so one jobs/ directory safely serves every scale.
    let h = Harness::new(HarnessConfig {
        jobs,
        store_dir: if no_cache {
            None
        } else {
            Some(out_dir.join("jobs"))
        },
        progress: true,
        mem_budget_bytes: mem_budget.unwrap_or(HarnessConfig::default().mem_budget_bytes),
        trace_store,
        ..HarnessConfig::default()
    });
    eprintln!(
        "# scale 1/{} machine ({} KB L2), warm-up {} tenths / measure {} tenths of the recurrence interval; {} worker(s)",
        scale.den,
        (2 << 20) / scale.den / 1024,
        scale.warm_tenths,
        scale.measure_tenths,
        h.workers(),
    );

    // With --json the tables are suppressed; the consolidated document
    // goes to stdout instead (and to <out-dir>/results.json either way).
    let table = |text: String| {
        if !json {
            print!("{text}");
        }
    };

    // CMP core-count axis: `--cores` (validated 1..=64 above), default
    // the paper-adjacent {1, 2, 4}.
    let core_counts: Vec<usize> = if cores.is_empty() {
        vec![1, 2, 4]
    } else {
        cores.iter().map(|&n| n as usize).collect()
    };

    let run_one = |name: &str| match name {
        "table1" => {
            let rows = experiments::table1(&h, scale);
            table(report::render_table1(&rows));
        }
        "fig4" => {
            let rows = experiments::fig4_5(&h, scale);
            if csv {
                table(report::sweep_csv(&rows));
            } else {
                table(report::render_sweep_improvement(
                    "Figure 4: improvement vs prefetch degree (idealized table)",
                    "degree",
                    &rows,
                ));
            }
        }
        "fig5" => {
            let rows = experiments::fig4_5(&h, scale);
            if csv {
                table(report::sweep_csv(&rows));
            } else {
                table(report::render_sweep_details(
                    "Figure 5: EPI reduction, residual miss rates, coverage and accuracy vs degree",
                    "degree",
                    &rows,
                ));
            }
        }
        "fig6" => {
            let rows = experiments::fig6(&h, scale);
            if csv {
                table(report::sweep_csv(&rows));
            } else {
                table(report::render_sweep_improvement(
                    &format!(
                        "Figure 6: improvement vs correlation-table entries \
                         (multiply by {} for the paper-equivalent size)",
                        scale.den
                    ),
                    "entries",
                    &rows,
                ));
            }
        }
        "fig7" => {
            let rows = experiments::fig7(&h, scale);
            if csv {
                table(report::sweep_csv(&rows));
            } else {
                table(report::render_sweep_improvement(
                    "Figure 7: improvement vs prefetch-buffer entries \
                     (64 = the tuned EBCP; paper: 23/13/31/26%)",
                    "buffer",
                    &rows,
                ));
            }
        }
        "fig8" => {
            let rows = experiments::fig8(&h, scale);
            table(report::render_fig8(&rows));
        }
        "fig9" => {
            let rows = experiments::fig9(&h, scale);
            table(report::render_fig9(&rows));
        }
        "ablation" => {
            let rows = experiments::ablation(&h, scale);
            table(report::render_ablation(&rows));
        }
        "cmp" => {
            let rows = experiments::cmp_interleaving(&h, scale, &core_counts);
            table(report::render_cmp(&rows));
        }
        "cmp-bw" => {
            let rows = experiments::cmp_bandwidth(&h, scale, &core_counts);
            table(report::render_cmp_bw(&rows));
        }
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    };

    // Each experiment runs under `catch_unwind`: `Harness::run` is
    // strict and panics (after the whole batch has executed and
    // cached) when any of its jobs failed. Strict mode stops at the
    // first failed experiment; `--keep-going` runs the rest — sibling
    // results are preserved and cached either way. The failure summary
    // below names every failed cell, and the process exits non-zero.
    let mut broken: Vec<String> = Vec::new();
    let mut run_caught = |name: &str| -> bool {
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(name))).is_ok();
        if !ok {
            broken.push(name.to_owned());
        }
        ok
    };
    if what == "all" {
        for name in [
            "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation", "cmp", "cmp-bw",
        ] {
            if !run_caught(name) && !keep_going {
                break;
            }
            if !json {
                println!();
            }
        }
    } else {
        run_caught(&what);
    }

    let results_path = out_dir.join("results.json");
    match h.write_results_json(&results_path) {
        Ok(()) => {
            if json {
                print!(
                    "{}",
                    std::fs::read_to_string(&results_path).unwrap_or_default()
                );
            }
            eprintln!("# results: {}", results_path.display());
        }
        Err(e) => eprintln!("warning: could not write {}: {e}", results_path.display()),
    }
    eprintln!("# {}", h.summary().render());
    eprintln!("# done in {:.1}s", t0.elapsed().as_secs_f64());

    let failures = h.failures();
    if !failures.is_empty() || !broken.is_empty() {
        eprintln!(
            "error: {} job(s) failed in {}:",
            failures.len(),
            broken.join(", ")
        );
        for (label, reason) in &failures {
            eprintln!("error:   {label}: {reason}");
        }
        if !keep_going {
            eprintln!("error: run stopped at the first failed experiment (use --keep-going to run the rest)");
        }
        std::process::exit(1);
    }
}

/// Runs the trace-scale cells, writes `<out-dir>/BENCH_trace_scale.json`
/// (with the process RSS high-water mark — the large tier's bounded-
/// memory evidence), and applies the gates: at the large tier the
/// scatter cell at ≥2 workers must beat the single-worker replay of
/// the same stream; with `--check-baseline` the pipelined geomean
/// must stay within 25% of the committed baseline.
fn bench_trace_scale(scale: Scale, out_dir: &Path, baseline: Option<&Path>) {
    let large = scale == Scale::large();
    let rows = if large {
        tracescale::measure_large(scale)
    } else {
        tracescale::measure(scale)
    };
    print!("{}", tracescale::render(&rows, large));
    let vm_hwm = tracescale::vm_hwm_bytes();
    if let Some(hwm) = vm_hwm {
        eprintln!(
            "# peak RSS (VmHWM): {:.1} MiB",
            hwm as f64 / (1 << 20) as f64
        );
    }
    let doc = tracescale::to_json(scale, large, &rows, vm_hwm);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: could not create {}: {e}", out_dir.display());
    }
    let path = out_dir.join("BENCH_trace_scale.json");
    match std::fs::write(&path, doc.to_json_pretty()) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    if large {
        match tracescale::check_speedup(&rows) {
            Ok(s) => eprintln!("# parallel gate passed: scatter speedup {s:.2}x over one worker"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let Some(baseline) = baseline else { return };
    let parsed = std::fs::read_to_string(baseline)
        .map_err(|e| e.to_string())
        .and_then(|text| ebcp_harness::json::parse(&text).map_err(|e| e.to_string()));
    let base_doc = match parsed {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: could not read baseline {}: {e}", baseline.display());
            std::process::exit(1);
        }
    };
    match tracescale::check_against_baseline(&rows, large, &base_doc, 0.25) {
        Ok((cur, base)) => {
            eprintln!("# trace-scale gate passed: geomean {cur:.1} Minst/s vs baseline {base:.1}")
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Runs the simulated-throughput matrix plus the sweep, lockstep and
/// CMP DES cells, writes `<out-dir>/BENCH_throughput.json`, and (with
/// `--check-baseline`) fails the process if any geometric mean dropped
/// more than 25% below the committed baseline.
fn bench_throughput(scale: Scale, out_dir: &Path, baseline: Option<&Path>) {
    let rows = throughput::measure(scale);
    print!("{}", throughput::render(&rows));
    let sweep = throughput::measure_sweep(scale);
    println!();
    print!("{}", throughput::render_sweep(&sweep));
    let lockstep = throughput::measure_lockstep(scale);
    println!();
    print!("{}", throughput::render_lockstep(&lockstep));
    let cmp = throughput::measure_cmp(scale);
    println!();
    print!("{}", throughput::render_cmp(&cmp));
    let doc = throughput::to_json(scale, &rows, &sweep, &lockstep, &cmp);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: could not create {}: {e}", out_dir.display());
    }
    let path = out_dir.join("BENCH_throughput.json");
    match std::fs::write(&path, doc.to_json_pretty()) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    let Some(baseline) = baseline else { return };
    let parsed = std::fs::read_to_string(baseline)
        .map_err(|e| e.to_string())
        .and_then(|text| ebcp_harness::json::parse(&text).map_err(|e| e.to_string()));
    let doc = match parsed {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: could not read baseline {}: {e}", baseline.display());
            std::process::exit(1);
        }
    };
    match throughput::check_against_baseline(&rows, &doc, 0.25) {
        Ok((cur, base)) => {
            eprintln!("# throughput gate passed: geomean {cur:.1} Minst/s vs baseline {base:.1}")
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    match throughput::check_sweep_against_baseline(&sweep, &doc, 0.25) {
        Ok((cur, base)) if base <= 0.0 => {
            eprintln!(
                "# sweep gate skipped (baseline has no sweep section); \
                 current geomean {cur:.1} Minst/s"
            );
        }
        Ok((cur, base)) => {
            eprintln!("# sweep gate passed: geomean {cur:.1} Minst/s vs baseline {base:.1}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    match throughput::check_lockstep_against_baseline(&lockstep, &doc, 0.25) {
        Ok((cur, base)) if base <= 0.0 => {
            eprintln!(
                "# lockstep gate skipped (baseline has no lockstep section); \
                 current geomean {cur:.1} Minst/s"
            );
        }
        Ok((cur, base)) => {
            eprintln!("# lockstep gate passed: geomean {cur:.1} Minst/s vs baseline {base:.1}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    match throughput::check_cmp_against_baseline(&cmp, &doc, 0.25) {
        Ok((cur, base)) if base <= 0.0 => {
            eprintln!(
                "# cmp gate skipped (baseline has no cmp section); \
                 current geomean {cur:.1} Minst/s"
            );
        }
        Ok((cur, base)) => {
            eprintln!("# cmp gate passed: geomean {cur:.1} Minst/s vs baseline {base:.1}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
