//! One driver per table/figure of §5.
//!
//! Every driver describes its work as a batch of content-addressed
//! [`Job`]s and submits it to a shared [`Harness`], which deduplicates,
//! parallelizes and caches. Row order is fixed by submission order, so
//! the rendered tables are identical for any `--jobs` count. Because the
//! harness memoizes across batches, baselines shared between figures
//! (e.g. the plain-machine no-prefetch run used by Table 1, Figure 7,
//! Figure 9 and the ablations) simulate exactly once per `repro all`.

use ebcp_core::EbcpConfig;
use ebcp_harness::{CmpJob, Harness, Job};
use ebcp_prefetch::{BaselineConfig, SolihinConfig};
use ebcp_sim::{PrefetcherSpec, SimResult};
use ebcp_trace::WorkloadSpec;

use crate::scale::Scale;

/// One row of Table 1 (baseline characterization).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Workload name.
    pub workload: String,
    /// Measured overall CPI.
    pub cpi: f64,
    /// Measured epochs per 1000 instructions.
    pub epi: f64,
    /// Measured L2 instruction misses per 1000 instructions.
    pub inst_mr: f64,
    /// Measured L2 load misses per 1000 instructions.
    pub load_mr: f64,
    /// Measured secondary (MSHR-merged) misses per 1000 instructions.
    /// No paper counterpart; Table 1 of the paper does not report it.
    pub sec_mr: f64,
    /// Paper values `[cpi, epi, inst_mr, load_mr]`.
    pub paper: [f64; 4],
}

/// Paper Table 1 reference values per preset (reporting order).
pub const TABLE1_PAPER: [(&str, [f64; 4]); 4] = [
    ("database", [3.27, 4.07, 1.00, 6.23]),
    ("tpcw", [2.00, 1.59, 0.71, 1.27]),
    ("specjbb2005", [2.06, 2.65, 0.12, 4.30]),
    ("specjappserver2004", [2.78, 3.25, 1.57, 2.64]),
];

fn paper_table1(workload: &str) -> [f64; 4] {
    TABLE1_PAPER
        .iter()
        .find(|(n, _)| *n == workload)
        .map(|(_, v)| *v)
        .unwrap_or([0.0; 4])
}

/// **Table 1**: baseline (no prefetching) statistics for the four
/// workloads.
pub fn table1(h: &Harness, scale: Scale) -> Vec<Table1Row> {
    let workloads = scale.workloads();
    let jobs: Vec<Job> = workloads
        .iter()
        .map(|w| Job::new(scale.run_spec(w, scale.machine()), PrefetcherSpec::None))
        .collect();
    let results = h.run(&jobs);
    workloads
        .iter()
        .zip(&results)
        .map(|(w, r)| Table1Row {
            workload: w.name.clone(),
            cpi: r.cpi(),
            epi: r.epi_per_kilo(),
            inst_mr: r.inst_mr(),
            load_mr: r.load_mr(),
            sec_mr: r.secondary_mr(),
            paper: paper_table1(&w.name),
        })
        .collect()
}

/// One point of a one-dimensional design-space sweep (Figures 4-7).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload name.
    pub workload: String,
    /// The swept parameter's value (prefetch degree, table entries or
    /// prefetch-buffer entries).
    pub x: u64,
    /// Overall performance improvement over no prefetching.
    pub improvement: f64,
    /// EPI reduction over no prefetching (Figure 5).
    pub epi_reduction: f64,
    /// Prefetch coverage (Figure 5).
    pub coverage: f64,
    /// Prefetch accuracy (Figure 5).
    pub accuracy: f64,
    /// Residual L2 instruction miss rate per 1000 instructions.
    pub inst_mr: f64,
    /// Residual L2 load miss rate per 1000 instructions.
    pub load_mr: f64,
}

fn sweep_point(workload: &str, x: u64, r: &SimResult, base: &SimResult) -> SweepPoint {
    SweepPoint {
        workload: workload.to_owned(),
        x,
        improvement: r.improvement_over(base),
        epi_reduction: r.epi_reduction_over(base),
        coverage: r.coverage(),
        accuracy: r.accuracy(),
        inst_mr: r.inst_mr(),
        load_mr: r.load_mr(),
    }
}

/// The idealized design-space starting point (§5.2): an 8M-entry table
/// (scaled), 32 addresses per entry, a 1024-entry prefetch buffer.
fn idealized_config(scale: Scale) -> EbcpConfig {
    EbcpConfig::idealized().with_table_entries(scale.entries(8 << 20))
}

/// A per-workload sweep: a shared baseline job followed by one job per
/// `x` value, assembled into [`SweepPoint`]s against that baseline.
/// `include_base_row` prepends the `x = 0` baseline row (Figures 4/5).
fn run_sweep(
    h: &Harness,
    scale: Scale,
    include_base_row: bool,
    jobs_for: impl Fn(&WorkloadSpec) -> (Job, Vec<(u64, Job)>),
) -> Vec<SweepPoint> {
    let workloads = scale.workloads();
    let mut jobs: Vec<Job> = Vec::new();
    let mut xs: Vec<Vec<u64>> = Vec::new();
    for w in &workloads {
        let (base, sweep) = jobs_for(w);
        jobs.push(base);
        xs.push(sweep.iter().map(|(x, _)| *x).collect());
        jobs.extend(sweep.into_iter().map(|(_, j)| j));
    }
    let results = h.run(&jobs);
    let mut rows = Vec::new();
    let mut cursor = 0;
    for (w, xvals) in workloads.iter().zip(&xs) {
        let base = &results[cursor];
        if include_base_row {
            rows.push(sweep_point(&w.name, 0, base, base));
        }
        for (i, &x) in xvals.iter().enumerate() {
            rows.push(sweep_point(&w.name, x, &results[cursor + 1 + i], base));
        }
        cursor += 1 + xvals.len();
    }
    rows
}

/// **Figures 4 and 5**: the prefetch-degree sweep on the idealized
/// configuration. Figure 4 reads `improvement`; Figure 5 reads
/// `epi_reduction`, the miss-rate split, `coverage` and `accuracy`.
pub fn fig4_5(h: &Harness, scale: Scale) -> Vec<SweepPoint> {
    let degrees = [1u64, 2, 4, 8, 16, 32];
    run_sweep(h, scale, true, |w| {
        let spec = scale.run_spec(w, scale.machine().with_pbuf_entries(1024));
        let base = Job::new(spec.clone(), PrefetcherSpec::None);
        let sweep = degrees
            .iter()
            .map(|&d| {
                let cfg = idealized_config(scale).with_degree(d as usize);
                (d, Job::new(spec.clone(), PrefetcherSpec::Ebcp(cfg)))
            })
            .collect();
        (base, sweep)
    })
}

/// **Figure 6**: the correlation-table-size sweep at degree 8.
/// `x` is the table entry count at the experiment scale; multiply by the
/// scale denominator for the paper-equivalent size.
pub fn fig6(h: &Harness, scale: Scale) -> Vec<SweepPoint> {
    let entry_sweep: Vec<u64> = [
        8 << 20,
        4 << 20,
        2 << 20,
        1 << 20,
        256 << 10,
        64 << 10,
        16 << 10,
    ]
    .into_iter()
    .map(|e| scale.entries(e))
    .collect();
    run_sweep(h, scale, false, |w| {
        let spec = scale.run_spec(w, scale.machine().with_pbuf_entries(1024));
        let base = Job::new(spec.clone(), PrefetcherSpec::None);
        let sweep = entry_sweep
            .iter()
            .map(|&entries| {
                let cfg = idealized_config(scale)
                    .with_degree(8)
                    .with_table_entries(entries);
                (entries, Job::new(spec.clone(), PrefetcherSpec::Ebcp(cfg)))
            })
            .collect();
        (base, sweep)
    })
}

/// **Figure 7**: the prefetch-buffer-size sweep at degree 8 with the
/// 1M-entry (scaled) table. The 64-entry point is the tuned EBCP
/// (paper: +23 % database, +13 % TPC-W, +31 % SPECjbb2005,
/// +26 % SPECjAppServer2004).
pub fn fig7(h: &Harness, scale: Scale) -> Vec<SweepPoint> {
    let buffers = [1024usize, 512, 256, 128, 64, 32, 16];
    run_sweep(h, scale, false, |w| {
        // The baseline is independent of the buffer size — and identical
        // to Table 1's job, so it is served from the harness memo.
        let base = Job::new(scale.run_spec(w, scale.machine()), PrefetcherSpec::None);
        let cfg = EbcpConfig::tuned().with_table_entries(scale.entries(1 << 20));
        let sweep = buffers
            .iter()
            .map(|&b| {
                let spec = scale.run_spec(w, scale.machine().with_pbuf_entries(b));
                (b as u64, Job::new(spec, PrefetcherSpec::Ebcp(cfg)))
            })
            .collect();
        (base, sweep)
    })
}

/// One point of the Figure 8 bandwidth-sensitivity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BwPoint {
    /// Workload name.
    pub workload: String,
    /// Read-bus bandwidth label ("3.2", "6.4", "9.6" GB/s).
    pub bandwidth: &'static str,
    /// Prefetch degree.
    pub degree: u64,
    /// Improvement over the same-bandwidth baseline.
    pub improvement: f64,
    /// Prefetches dropped (bus saturation + MSHR pressure).
    pub dropped: u64,
}

/// **Figure 8**: prefetch-degree sweep at three memory bandwidths
/// (read/write = 3.2/1.6, 6.4/3.2 and 9.6/4.8 GB/s).
pub fn fig8(h: &Harness, scale: Scale) -> Vec<BwPoint> {
    let degrees = [1u64, 2, 4, 8, 16, 32];
    let bws: [(u64, u64, &'static str); 3] = [(1, 3, "3.2"), (2, 3, "6.4"), (1, 1, "9.6")];
    let workloads = scale.workloads();
    let mut jobs: Vec<Job> = Vec::new();
    for w in &workloads {
        for (num, den, _) in bws {
            let sim = scale
                .machine()
                .with_bandwidth(num, den)
                .with_pbuf_entries(1024);
            let spec = scale.run_spec(w, sim);
            jobs.push(Job::new(spec.clone(), PrefetcherSpec::None));
            for &d in &degrees {
                let cfg = idealized_config(scale).with_degree(d as usize);
                jobs.push(Job::new(spec.clone(), PrefetcherSpec::Ebcp(cfg)));
            }
        }
    }
    let results = h.run(&jobs);
    let mut rows = Vec::new();
    let mut cursor = 0;
    for w in &workloads {
        for (_, _, label) in bws {
            let base = &results[cursor];
            for (i, &d) in degrees.iter().enumerate() {
                let r = &results[cursor + 1 + i];
                rows.push(BwPoint {
                    workload: w.name.clone(),
                    bandwidth: label,
                    degree: d,
                    improvement: r.improvement_over(base),
                    dropped: r.pf_dropped_bus + r.pf_dropped_mshr,
                });
            }
            cursor += 1 + degrees.len();
        }
    }
    rows
}

/// One bar of the Figure 9 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpPoint {
    /// Workload name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Improvement over no prefetching.
    pub improvement: f64,
    /// Coverage.
    pub coverage: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// The paper's improvement, where §5.3 quotes one.
    pub paper: Option<f64>,
}

/// §5.3's quoted Figure 9 improvements.
pub fn fig9_paper(workload: &str, prefetcher: &str) -> Option<f64> {
    let v = match (workload, prefetcher) {
        ("database", "ebcp") => 0.20,
        ("tpcw", "ebcp") => 0.12,
        ("specjbb2005", "ebcp") => 0.28,
        ("specjappserver2004", "ebcp") => 0.24,
        ("database", "solihin-6,1") => 0.13,
        ("tpcw", "solihin-6,1") => 0.08,
        ("specjbb2005", "solihin-6,1") => 0.20,
        ("specjappserver2004", "solihin-6,1") => 0.16,
        _ => return None,
    };
    Some(v)
}

/// **Figure 9**: every prefetcher at degree 6 with equal table budgets.
/// The comparison extends the paper's bars with the modern competitor
/// roster (`triangel`, `amc`) and the neural-off-chip-filtered EBCP
/// (`ebcp+nof`); the paper-quoted values still anchor the original
/// eight plus EBCP.
pub fn fig9(h: &Harness, scale: Scale) -> Vec<CmpPoint> {
    let workloads = scale.workloads();
    let roster: Vec<PrefetcherSpec> = {
        let mut pfs: Vec<PrefetcherSpec> = scale
            .figure9_roster()
            .into_iter()
            .chain(scale.modern_roster())
            .map(|(n, c)| PrefetcherSpec::baseline(n, c))
            .collect();
        pfs.push(PrefetcherSpec::Ebcp(
            EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20)),
        ));
        pfs.push(PrefetcherSpec::Ebcp(
            EbcpConfig::comparison_minus().with_table_entries(scale.entries(1 << 20)),
        ));
        pfs.push(PrefetcherSpec::filtered(PrefetcherSpec::Ebcp(
            EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20)),
        )));
        pfs
    };
    let mut jobs: Vec<Job> = Vec::new();
    for w in &workloads {
        let spec = scale.run_spec(w, scale.machine());
        jobs.push(Job::new(spec.clone(), PrefetcherSpec::None));
        jobs.extend(roster.iter().map(|pf| Job::new(spec.clone(), pf.clone())));
    }
    let results = h.run(&jobs);
    let mut rows = Vec::new();
    let mut cursor = 0;
    for w in &workloads {
        let base = &results[cursor];
        for (i, pf) in roster.iter().enumerate() {
            let r = &results[cursor + 1 + i];
            rows.push(CmpPoint {
                workload: w.name.clone(),
                prefetcher: pf.name(),
                improvement: r.improvement_over(base),
                coverage: r.coverage(),
                accuracy: r.accuracy(),
                paper: fig9_paper(&w.name, &pf.name()),
            });
        }
        cursor += 1 + roster.len();
    }
    rows
}

/// One row of the ablation study (not in the paper's figures; DESIGN.md
/// calls these out as the EBCP design choices worth isolating).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Workload name.
    pub workload: String,
    /// Ablation label.
    pub variant: &'static str,
    /// Improvement over no prefetching.
    pub improvement: f64,
    /// Coverage.
    pub coverage: f64,
}

/// **Ablations**: the tuned EBCP with individual design choices
/// disabled — the EMAB pairing (`minus`), the §3.4.3 LRU feedback
/// (`no-promotion`), and buffer-hit triggering (`no-chaining`).
pub fn ablation(h: &Harness, scale: Scale) -> Vec<AblationPoint> {
    let entries = scale.entries(1 << 20);
    let tuned = EbcpConfig::tuned().with_table_entries(entries);
    let variants: Vec<(&'static str, EbcpConfig)> = vec![
        ("full", tuned),
        (
            "minus (+1/+2 window)",
            EbcpConfig {
                variant: ebcp_core::EbcpVariant::Minus,
                ..tuned
            },
        ),
        (
            "no-promotion",
            EbcpConfig {
                promote_on_hit: false,
                ..tuned
            },
        ),
        (
            "no-chaining",
            EbcpConfig {
                chain_on_buffer_hit: false,
                ..tuned
            },
        ),
        (
            "no-promotion+chaining",
            EbcpConfig {
                promote_on_hit: false,
                chain_on_buffer_hit: false,
                ..tuned
            },
        ),
    ];
    let workloads = scale.workloads();
    let mut jobs: Vec<Job> = Vec::new();
    for w in &workloads {
        let spec = scale.run_spec(w, scale.machine());
        jobs.push(Job::new(spec.clone(), PrefetcherSpec::None));
        jobs.extend(
            variants
                .iter()
                .map(|(_, cfg)| Job::new(spec.clone(), PrefetcherSpec::Ebcp(*cfg))),
        );
    }
    let results = h.run(&jobs);
    let mut rows = Vec::new();
    let mut cursor = 0;
    for w in &workloads {
        let base = &results[cursor];
        for (i, (label, _)) in variants.iter().enumerate() {
            let r = &results[cursor + 1 + i];
            rows.push(AblationPoint {
                workload: w.name.clone(),
                variant: label,
                improvement: r.improvement_over(base),
                coverage: r.coverage(),
            });
        }
        cursor += 1 + variants.len();
    }
    rows
}

/// One row of the CMP interleaving study (§3.3.1 / §6 future work).
#[derive(Debug, Clone, PartialEq)]
pub struct CmpPointRow {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Cores on the chip.
    pub cores: usize,
    /// Mean per-core improvement over the same-core-count baseline.
    pub improvement: f64,
    /// Aggregate coverage.
    pub coverage: f64,
}

/// The CMP candidate roster: tuned EBCP (per-core EMABs over one shared
/// table) against the memory-side Solihin engine, whose successor
/// chains the interleaved miss stream scrambles as core count grows.
fn cmp_candidates(scale: Scale) -> [PrefetcherSpec; 2] {
    let entries = scale.entries(1 << 20);
    [
        PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(entries)),
        PrefetcherSpec::baseline(
            "solihin-6,1",
            BaselineConfig::Solihin(SolihinConfig {
                entries,
                ..SolihinConfig::deep()
            }),
        ),
    ]
}

/// **CMP interleaving** (the paper's §6 future work, quantifying the
/// §3.3.1 argument): N cores run *disjoint* database workloads over a
/// shared L2. The on-chip EBCP control sees which core each miss belongs
/// to and keeps per-core EMABs over one shared table; the memory-side
/// Solihin engine sees only the interleaved stream at the controller,
/// which scrambles its successor chains as core count grows.
///
/// CMP cells are first-class harness jobs: content-addressed, memoized
/// and disk-cached like any single-core cell, with per-core streams
/// pre-resolved once through the shared front-end cache and every cell
/// replayed on the discrete-event [`CmpEngine`](ebcp_sim::CmpEngine).
pub fn cmp_interleaving(h: &Harness, scale: Scale, core_counts: &[usize]) -> Vec<CmpPointRow> {
    let preset = WorkloadSpec::database();
    let candidates = cmp_candidates(scale);
    let mut jobs: Vec<CmpJob> = Vec::new();
    for &n in core_counts {
        let spec = scale.cmp_spec(&preset, n);
        jobs.push(CmpJob::new(spec.clone(), PrefetcherSpec::None));
        jobs.extend(
            candidates
                .iter()
                .map(|pf| CmpJob::new(spec.clone(), pf.clone())),
        );
    }
    let results = h.run_cmp(&jobs);
    let mut rows = Vec::new();
    let mut cursor = 0;
    for &n in core_counts {
        let base = &results[cursor];
        for (i, pf) in candidates.iter().enumerate() {
            let r = &results[cursor + 1 + i];
            rows.push(CmpPointRow {
                prefetcher: pf.name(),
                cores: n,
                improvement: r.improvement_over(base),
                coverage: r.coverage(),
            });
        }
        cursor += 1 + candidates.len();
    }
    rows
}

/// One point of the CMP bandwidth-scenario sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpBwPoint {
    /// Read-bus bandwidth label ("3.2", "6.4", "9.6" GB/s).
    pub bandwidth: &'static str,
    /// Cores on the chip.
    pub cores: usize,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Mean per-core improvement over the same-bandwidth,
    /// same-core-count baseline.
    pub improvement: f64,
    /// Prefetches dropped chip-wide (bus saturation + MSHR pressure).
    pub dropped: u64,
}

/// **CMP bandwidth scenarios** (Figure 8 under real contention): the
/// disjoint database mixes of [`cmp_interleaving`] at the paper's three
/// memory bandwidths (read/write = 3.2/1.6, 6.4/3.2 and 9.6/4.8 GB/s).
/// Where single-core Figure 8 throttles one core's prefetches, here N
/// cores' demand misses *and* prefetches compete for the same bus, so
/// the drop counts show how contention scales with the core count.
pub fn cmp_bandwidth(h: &Harness, scale: Scale, core_counts: &[usize]) -> Vec<CmpBwPoint> {
    let bws: [(u64, u64, &'static str); 3] = [(1, 3, "3.2"), (2, 3, "6.4"), (1, 1, "9.6")];
    let preset = WorkloadSpec::database();
    let candidates = cmp_candidates(scale);
    let mut jobs: Vec<CmpJob> = Vec::new();
    for (num, den, _) in bws {
        for &n in core_counts {
            let mut spec = scale.cmp_spec(&preset, n);
            spec.sim = spec.sim.with_bandwidth(num, den);
            jobs.push(CmpJob::new(spec.clone(), PrefetcherSpec::None));
            jobs.extend(
                candidates
                    .iter()
                    .map(|pf| CmpJob::new(spec.clone(), pf.clone())),
            );
        }
    }
    let results = h.run_cmp(&jobs);
    let mut rows = Vec::new();
    let mut cursor = 0;
    for (_, _, label) in bws {
        for &n in core_counts {
            let base = &results[cursor];
            for (i, pf) in candidates.iter().enumerate() {
                let r = &results[cursor + 1 + i];
                rows.push(CmpBwPoint {
                    bandwidth: label,
                    cores: n,
                    prefetcher: pf.name(),
                    improvement: r.improvement_over(base),
                    dropped: r.aggregate.pf_dropped_bus + r.aggregate.pf_dropped_mshr,
                });
            }
            cursor += 1 + candidates.len();
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_present() {
        assert_eq!(paper_table1("database")[0], 3.27);
        assert_eq!(paper_table1("unknown"), [0.0; 4]);
        assert_eq!(fig9_paper("database", "ebcp"), Some(0.20));
        assert_eq!(fig9_paper("database", "stream"), None);
    }

    #[test]
    fn idealized_config_scales_entries() {
        let c = idealized_config(Scale::standard());
        assert_eq!(c.table_entries, (8 << 20) / 4);
        assert_eq!(c.degree, 32);
    }

    #[test]
    fn shared_baselines_run_once_across_drivers() {
        // Table 1, Figure 7, Figure 9 and the ablations all use the
        // plain-machine no-prefetch baseline; one harness must simulate
        // it once per workload, not once per figure.
        let h = Harness::serial();
        let scale = Scale {
            den: 64,
            warm_tenths: 2,
            measure_tenths: 1,
            seed: 11,
        };
        let _ = table1(&h, scale);
        let after_table1 = h.summary().executed;
        assert_eq!(after_table1, 4, "table1 = one baseline per workload");
        let _ = ablation(&h, scale);
        let s = h.summary();
        // The ablation batch adds only its 5 variants x 4 workloads; its
        // 4 baselines are memo hits from table1.
        assert_eq!(s.executed, after_table1 + 5 * 4);
        assert!(s.memo_hits >= 4);
    }
}
