//! One driver per table/figure of §5.

use ebcp_core::EbcpConfig;
use ebcp_prefetch::{BaselineConfig, SolihinConfig};
use ebcp_sim::{CmpEngine, PrefetcherSpec, SimResult};
use ebcp_trace::{TraceGenerator, WorkloadSpec};

use crate::scale::{Scale, TraceSource};

/// One row of Table 1 (baseline characterization).
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Workload name.
    pub workload: String,
    /// Measured overall CPI.
    pub cpi: f64,
    /// Measured epochs per 1000 instructions.
    pub epi: f64,
    /// Measured L2 instruction misses per 1000 instructions.
    pub inst_mr: f64,
    /// Measured L2 load misses per 1000 instructions.
    pub load_mr: f64,
    /// Paper values `[cpi, epi, inst_mr, load_mr]`.
    pub paper: [f64; 4],
}

/// Paper Table 1 reference values per preset (reporting order).
pub const TABLE1_PAPER: [(&str, [f64; 4]); 4] = [
    ("database", [3.27, 4.07, 1.00, 6.23]),
    ("tpcw", [2.00, 1.59, 0.71, 1.27]),
    ("specjbb2005", [2.06, 2.65, 0.12, 4.30]),
    ("specjappserver2004", [2.78, 3.25, 1.57, 2.64]),
];

fn paper_table1(workload: &str) -> [f64; 4] {
    TABLE1_PAPER
        .iter()
        .find(|(n, _)| *n == workload)
        .map(|(_, v)| *v)
        .unwrap_or([0.0; 4])
}

/// **Table 1**: baseline (no prefetching) statistics for the four
/// workloads.
pub fn table1(scale: Scale) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for w in scale.workloads() {
        let spec = scale.run_spec(&w, scale.machine());
        let src = TraceSource::prepare(&spec);
        let r = src.run(&spec, &PrefetcherSpec::None);
        rows.push(Table1Row {
            workload: w.name.clone(),
            cpi: r.cpi(),
            epi: r.epi_per_kilo(),
            inst_mr: r.inst_mr(),
            load_mr: r.load_mr(),
            paper: paper_table1(&w.name),
        });
    }
    rows
}

/// One point of a one-dimensional design-space sweep (Figures 4-7).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Workload name.
    pub workload: String,
    /// The swept parameter's value (prefetch degree, table entries or
    /// prefetch-buffer entries).
    pub x: u64,
    /// Overall performance improvement over no prefetching.
    pub improvement: f64,
    /// EPI reduction over no prefetching (Figure 5).
    pub epi_reduction: f64,
    /// Prefetch coverage (Figure 5).
    pub coverage: f64,
    /// Prefetch accuracy (Figure 5).
    pub accuracy: f64,
    /// Residual L2 instruction miss rate per 1000 instructions.
    pub inst_mr: f64,
    /// Residual L2 load miss rate per 1000 instructions.
    pub load_mr: f64,
}

fn sweep_point(workload: &str, x: u64, r: &SimResult, base: &SimResult) -> SweepPoint {
    SweepPoint {
        workload: workload.to_owned(),
        x,
        improvement: r.improvement_over(base),
        epi_reduction: r.epi_reduction_over(base),
        coverage: r.coverage(),
        accuracy: r.accuracy(),
        inst_mr: r.inst_mr(),
        load_mr: r.load_mr(),
    }
}

/// The idealized design-space starting point (§5.2): an 8M-entry table
/// (scaled), 32 addresses per entry, a 1024-entry prefetch buffer.
fn idealized_config(scale: Scale) -> EbcpConfig {
    EbcpConfig::idealized().with_table_entries(scale.entries(8 << 20))
}

/// **Figures 4 and 5**: the prefetch-degree sweep on the idealized
/// configuration. Figure 4 reads `improvement`; Figure 5 reads
/// `epi_reduction`, the miss-rate split, `coverage` and `accuracy`.
pub fn fig4_5(scale: Scale) -> Vec<SweepPoint> {
    let degrees = [1u64, 2, 4, 8, 16, 32];
    let mut rows = Vec::new();
    for w in scale.workloads() {
        let sim = scale.machine().with_pbuf_entries(1024);
        let spec = scale.run_spec(&w, sim);
        let src = TraceSource::prepare(&spec);
        let base = src.run(&spec, &PrefetcherSpec::None);
        rows.push(sweep_point(&w.name, 0, &base, &base));
        for &d in &degrees {
            let cfg = idealized_config(scale).with_degree(d as usize);
            let r = src.run(&spec, &PrefetcherSpec::Ebcp(cfg));
            rows.push(sweep_point(&w.name, d, &r, &base));
        }
    }
    rows
}

/// **Figure 6**: the correlation-table-size sweep at degree 8.
/// `x` is the table entry count at the experiment scale; multiply by the
/// scale denominator for the paper-equivalent size.
pub fn fig6(scale: Scale) -> Vec<SweepPoint> {
    let entry_sweep: Vec<u64> = [8 << 20, 4 << 20, 2 << 20, 1 << 20, 256 << 10, 64 << 10, 16 << 10]
        .into_iter()
        .map(|e| scale.entries(e))
        .collect();
    let mut rows = Vec::new();
    for w in scale.workloads() {
        let sim = scale.machine().with_pbuf_entries(1024);
        let spec = scale.run_spec(&w, sim);
        let src = TraceSource::prepare(&spec);
        let base = src.run(&spec, &PrefetcherSpec::None);
        for &entries in &entry_sweep {
            let cfg = idealized_config(scale).with_degree(8).with_table_entries(entries);
            let r = src.run(&spec, &PrefetcherSpec::Ebcp(cfg));
            rows.push(sweep_point(&w.name, entries, &r, &base));
        }
    }
    rows
}

/// **Figure 7**: the prefetch-buffer-size sweep at degree 8 with the
/// 1M-entry (scaled) table. The 64-entry point is the tuned EBCP
/// (paper: +23 % database, +13 % TPC-W, +31 % SPECjbb2005,
/// +26 % SPECjAppServer2004).
pub fn fig7(scale: Scale) -> Vec<SweepPoint> {
    let buffers = [1024usize, 512, 256, 128, 64, 32, 16];
    let mut rows = Vec::new();
    for w in scale.workloads() {
        // The baseline is independent of the buffer size.
        let spec0 = scale.run_spec(&w, scale.machine());
        let src = TraceSource::prepare(&spec0);
        let base = src.run(&spec0, &PrefetcherSpec::None);
        for &b in &buffers {
            let sim = scale.machine().with_pbuf_entries(b);
            let spec = scale.run_spec(&w, sim);
            let cfg = EbcpConfig::tuned().with_table_entries(scale.entries(1 << 20));
            let r = src.run(&spec, &PrefetcherSpec::Ebcp(cfg));
            rows.push(sweep_point(&w.name, b as u64, &r, &base));
        }
    }
    rows
}

/// One point of the Figure 8 bandwidth-sensitivity sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BwPoint {
    /// Workload name.
    pub workload: String,
    /// Read-bus bandwidth label ("3.2", "6.4", "9.6" GB/s).
    pub bandwidth: &'static str,
    /// Prefetch degree.
    pub degree: u64,
    /// Improvement over the same-bandwidth baseline.
    pub improvement: f64,
    /// Prefetches dropped (bus saturation + MSHR pressure).
    pub dropped: u64,
}

/// **Figure 8**: prefetch-degree sweep at three memory bandwidths
/// (read/write = 3.2/1.6, 6.4/3.2 and 9.6/4.8 GB/s).
pub fn fig8(scale: Scale) -> Vec<BwPoint> {
    let degrees = [1u64, 2, 4, 8, 16, 32];
    let bws: [(u64, u64, &'static str); 3] = [(1, 3, "3.2"), (2, 3, "6.4"), (1, 1, "9.6")];
    let mut rows = Vec::new();
    for w in scale.workloads() {
        for (num, den, label) in bws {
            let sim = scale.machine().with_bandwidth(num, den).with_pbuf_entries(1024);
            let spec = scale.run_spec(&w, sim);
            let src = TraceSource::prepare(&spec);
            let base = src.run(&spec, &PrefetcherSpec::None);
            for &d in &degrees {
                let cfg = idealized_config(scale).with_degree(d as usize);
                let r = src.run(&spec, &PrefetcherSpec::Ebcp(cfg));
                rows.push(BwPoint {
                    workload: w.name.clone(),
                    bandwidth: label,
                    degree: d,
                    improvement: r.improvement_over(&base),
                    dropped: r.pf_dropped_bus + r.pf_dropped_mshr,
                });
            }
        }
    }
    rows
}

/// One bar of the Figure 9 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpPoint {
    /// Workload name.
    pub workload: String,
    /// Prefetcher name.
    pub prefetcher: String,
    /// Improvement over no prefetching.
    pub improvement: f64,
    /// Coverage.
    pub coverage: f64,
    /// Accuracy.
    pub accuracy: f64,
    /// The paper's improvement, where §5.3 quotes one.
    pub paper: Option<f64>,
}

/// §5.3's quoted Figure 9 improvements.
pub fn fig9_paper(workload: &str, prefetcher: &str) -> Option<f64> {
    let v = match (workload, prefetcher) {
        ("database", "ebcp") => 0.20,
        ("tpcw", "ebcp") => 0.12,
        ("specjbb2005", "ebcp") => 0.28,
        ("specjappserver2004", "ebcp") => 0.24,
        ("database", "solihin-6,1") => 0.13,
        ("tpcw", "solihin-6,1") => 0.08,
        ("specjbb2005", "solihin-6,1") => 0.20,
        ("specjappserver2004", "solihin-6,1") => 0.16,
        _ => return None,
    };
    Some(v)
}

/// **Figure 9**: every prefetcher at degree 6 with equal table budgets.
pub fn fig9(scale: Scale) -> Vec<CmpPoint> {
    let mut rows = Vec::new();
    for w in scale.workloads() {
        let spec = scale.run_spec(&w, scale.machine());
        let src = TraceSource::prepare(&spec);
        let base = src.run(&spec, &PrefetcherSpec::None);
        let mut pfs: Vec<PrefetcherSpec> = scale
            .figure9_roster()
            .into_iter()
            .map(|(n, c)| PrefetcherSpec::baseline(n, c))
            .collect();
        pfs.push(PrefetcherSpec::Ebcp(
            EbcpConfig::comparison().with_table_entries(scale.entries(1 << 20)),
        ));
        pfs.push(PrefetcherSpec::Ebcp(
            EbcpConfig::comparison_minus().with_table_entries(scale.entries(1 << 20)),
        ));
        for pf in pfs {
            let r = src.run(&spec, &pf);
            rows.push(CmpPoint {
                workload: w.name.clone(),
                prefetcher: pf.name(),
                improvement: r.improvement_over(&base),
                coverage: r.coverage(),
                accuracy: r.accuracy(),
                paper: fig9_paper(&w.name, &pf.name()),
            });
        }
    }
    rows
}

/// One row of the ablation study (not in the paper's figures; DESIGN.md
/// calls these out as the EBCP design choices worth isolating).
#[derive(Debug, Clone, PartialEq)]
pub struct AblationPoint {
    /// Workload name.
    pub workload: String,
    /// Ablation label.
    pub variant: &'static str,
    /// Improvement over no prefetching.
    pub improvement: f64,
    /// Coverage.
    pub coverage: f64,
}

/// **Ablations**: the tuned EBCP with individual design choices
/// disabled — the EMAB pairing (`minus`), the §3.4.3 LRU feedback
/// (`no-promotion`), and buffer-hit triggering (`no-chaining`).
pub fn ablation(scale: Scale) -> Vec<AblationPoint> {
    let entries = scale.entries(1 << 20);
    let tuned = EbcpConfig::tuned().with_table_entries(entries);
    let variants: Vec<(&'static str, EbcpConfig)> = vec![
        ("full", tuned),
        ("minus (+1/+2 window)", EbcpConfig { variant: ebcp_core::EbcpVariant::Minus, ..tuned }),
        ("no-promotion", EbcpConfig { promote_on_hit: false, ..tuned }),
        ("no-chaining", EbcpConfig { chain_on_buffer_hit: false, ..tuned }),
        ("no-promotion+chaining", EbcpConfig {
            promote_on_hit: false,
            chain_on_buffer_hit: false,
            ..tuned
        }),
    ];
    let mut rows = Vec::new();
    for w in scale.workloads() {
        let spec = scale.run_spec(&w, scale.machine());
        let src = TraceSource::prepare(&spec);
        let base = src.run(&spec, &PrefetcherSpec::None);
        for (label, cfg) in &variants {
            let r = src.run(&spec, &PrefetcherSpec::Ebcp(*cfg));
            rows.push(AblationPoint {
                workload: w.name.clone(),
                variant: label,
                improvement: r.improvement_over(&base),
                coverage: r.coverage(),
            });
        }
    }
    rows
}

/// One row of the CMP interleaving study (§3.3.1 / §6 future work).
#[derive(Debug, Clone, PartialEq)]
pub struct CmpPointRow {
    /// Prefetcher name.
    pub prefetcher: String,
    /// Cores on the chip.
    pub cores: usize,
    /// Mean per-core improvement over the same-core-count baseline.
    pub improvement: f64,
    /// Aggregate coverage.
    pub coverage: f64,
}

/// **CMP interleaving** (the paper's §6 future work, quantifying the
/// §3.3.1 argument): N cores run *disjoint* database workloads over a
/// shared L2. The on-chip EBCP control sees which core each miss belongs
/// to and keeps per-core EMABs over one shared table; the memory-side
/// Solihin engine sees only the interleaved stream at the controller,
/// which scrambles its successor chains as core count grows.
pub fn cmp_interleaving(scale: Scale, core_counts: &[usize]) -> Vec<CmpPointRow> {
    // Each core gets a distinct transaction mix (distinct seed_tag) at
    // a per-core share of the footprint.
    let make_specs = |n: usize| -> Vec<WorkloadSpec> {
        (0..n)
            .map(|k| WorkloadSpec {
                seed_tag: 0x0d00 + k as u64,
                ..WorkloadSpec::database().scaled(1, (scale.den as usize) * n)
            })
            .collect()
    };
    let mut rows = Vec::new();
    for &n in core_counts {
        let specs = make_specs(n);
        let interval = specs.iter().map(|w| w.recurrence_interval()).max().unwrap_or(1);
        let warm = interval * scale.warm_tenths / 10;
        let measure = interval * scale.measure_tenths / 10;
        let traces: Vec<Vec<_>> = specs
            .iter()
            .enumerate()
            .map(|(k, w)| {
                TraceGenerator::new(w, scale.seed + k as u64).take((warm + measure) as usize).collect()
            })
            .collect();
        let sim = scale.machine();
        let run = |pf: &PrefetcherSpec| {
            let mut engine = CmpEngine::new(sim, n, pf.build());
            engine.run(&traces, warm, measure, "database-mix")
        };
        let base = run(&PrefetcherSpec::None);
        let entries = scale.entries(1 << 20);
        let candidates = vec![
            PrefetcherSpec::Ebcp(EbcpConfig::comparison().with_table_entries(entries)),
            PrefetcherSpec::baseline(
                "solihin-6,1",
                BaselineConfig::Solihin(SolihinConfig { entries, ..SolihinConfig::deep() }),
            ),
        ];
        for pf in candidates {
            let r = run(&pf);
            rows.push(CmpPointRow {
                prefetcher: pf.name(),
                cores: n,
                improvement: r.improvement_over(&base),
                coverage: r.coverage(),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_present() {
        assert_eq!(paper_table1("database")[0], 3.27);
        assert_eq!(paper_table1("unknown"), [0.0; 4]);
        assert_eq!(fig9_paper("database", "ebcp"), Some(0.20));
        assert_eq!(fig9_paper("database", "stream"), None);
    }

    #[test]
    fn idealized_config_scales_entries() {
        let c = idealized_config(Scale::standard());
        assert_eq!(c.table_entries, (8 << 20) / 4);
        assert_eq!(c.degree, 32);
    }
}
