//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation (§5).
//!
//! Each driver returns typed rows and can print an aligned table with the
//! paper's reference values beside the measured ones. The `repro` binary
//! exposes one subcommand per experiment; the Criterion benches in
//! `benches/` time scaled-down versions of the same drivers.
//!
//! # Scaling
//!
//! Experiments run on a *proportionally scaled* machine: caches and
//! workload footprints are divided by the same factor (default 4), which
//! preserves Table 1's per-instruction statistics while cutting the
//! recurrence interval — and hence the trace length — by the factor.
//! Capacity-class predictor tables (GHB, TCP PHT, SMS PHT, the
//! main-memory correlation tables) scale with the factor too, so every
//! capacity ratio in the comparison is preserved; structural parameters
//! (prefetch buffer, MSHRs, memory latency, bus widths, 2 KB spatial
//! regions) stay at the paper's values. `Scale::full()` runs the true
//! 2 MB-L2 machine.

pub mod experiments;
pub mod report;
pub mod scale;
pub mod service;
pub mod throughput;
pub mod tracescale;

pub use ebcp_harness::{Harness, HarnessConfig, Job};
pub use experiments::{
    ablation, cmp_bandwidth, cmp_interleaving, fig4_5, fig6, fig7, fig8, fig9, table1,
    AblationPoint, BwPoint, CmpBwPoint, CmpPoint, CmpPointRow, SweepPoint, Table1Row,
};
pub use scale::Scale;
pub use throughput::ThroughputRow;
