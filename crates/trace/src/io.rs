//! Compact binary trace serialization.
//!
//! Traces can be materialized once and replayed across many simulator
//! configurations. The format is a little-endian stream:
//!
//! ```text
//! magic "EBCPTRC1"  (8 bytes)
//! count             (u64)
//! count x record:
//!     tag   (u8: 0=Alu 1=Load 2=LoadFeedsMispredict 3=Store 4=Branch 5=BranchMispredicted 6=Serialize)
//!     pc    (u64)
//!     addr  (u64, loads/stores only)
//! ```

use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, BytesMut};
use ebcp_types::{Addr, Pc};

use crate::record::{Op, TraceRecord};

const MAGIC: &[u8; 8] = b"EBCPTRC1";

/// Error decoding a binary trace.
#[derive(Debug)]
pub enum TraceCodecError {
    /// The stream does not start with the trace magic.
    BadMagic,
    /// A record has an unknown tag byte.
    BadTag(u8),
    /// The stream ended mid-record.
    Truncated,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for TraceCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceCodecError::BadMagic => f.write_str("stream is not an EBCP trace"),
            TraceCodecError::BadTag(t) => write!(f, "unknown record tag {t}"),
            TraceCodecError::Truncated => f.write_str("trace stream ended mid-record"),
            TraceCodecError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceCodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceCodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceCodecError {
    fn from(e: std::io::Error) -> Self {
        TraceCodecError::Io(e)
    }
}

fn encode_record(buf: &mut BytesMut, r: &TraceRecord) {
    match r.op {
        Op::Alu => {
            buf.put_u8(0);
            buf.put_u64_le(r.pc.get());
        }
        Op::Load {
            addr,
            feeds_mispredict,
        } => {
            buf.put_u8(if feeds_mispredict { 2 } else { 1 });
            buf.put_u64_le(r.pc.get());
            buf.put_u64_le(addr.get());
        }
        Op::Store { addr } => {
            buf.put_u8(3);
            buf.put_u64_le(r.pc.get());
            buf.put_u64_le(addr.get());
        }
        Op::Branch { mispredicted } => {
            buf.put_u8(if mispredicted { 5 } else { 4 });
            buf.put_u64_le(r.pc.get());
        }
        Op::Serialize => {
            buf.put_u8(6);
            buf.put_u64_le(r.pc.get());
        }
    }
}

/// Writes a trace to `w` in the binary format.
///
/// # Errors
///
/// Returns [`TraceCodecError::Io`] if the writer fails.
pub fn write_trace<W: Write>(mut w: W, trace: &[TraceRecord]) -> Result<(), TraceCodecError> {
    let mut buf = BytesMut::with_capacity(16 + trace.len() * 17);
    buf.put_slice(MAGIC);
    buf.put_u64_le(trace.len() as u64);
    for r in trace {
        encode_record(&mut buf, r);
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns a [`TraceCodecError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<TraceRecord>, TraceCodecError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    if buf.remaining() < 16 {
        return Err(TraceCodecError::Truncated);
    }
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceCodecError::BadMagic);
    }
    let count = buf.get_u64_le() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 9 {
            return Err(TraceCodecError::Truncated);
        }
        let tag = buf.get_u8();
        let pc = Pc::new(buf.get_u64_le());
        let op = match tag {
            0 => Op::Alu,
            1 | 2 => {
                if buf.remaining() < 8 {
                    return Err(TraceCodecError::Truncated);
                }
                Op::Load {
                    addr: Addr::new(buf.get_u64_le()),
                    feeds_mispredict: tag == 2,
                }
            }
            3 => {
                if buf.remaining() < 8 {
                    return Err(TraceCodecError::Truncated);
                }
                Op::Store {
                    addr: Addr::new(buf.get_u64_le()),
                }
            }
            4 | 5 => Op::Branch {
                mispredicted: tag == 5,
            },
            6 => Op::Serialize,
            t => return Err(TraceCodecError::BadTag(t)),
        };
        out.push(TraceRecord::new(pc, op));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::alu(Pc::new(0x100)),
            TraceRecord::load(Pc::new(0x104), Addr::new(0x8000)),
            TraceRecord::new(
                Pc::new(0x108),
                Op::Load {
                    addr: Addr::new(0x9000),
                    feeds_mispredict: true,
                },
            ),
            TraceRecord::store(Pc::new(0x10c), Addr::new(0xa000)),
            TraceRecord::new(
                Pc::new(0x110),
                Op::Branch {
                    mispredicted: false,
                },
            ),
            TraceRecord::new(Pc::new(0x114), Op::Branch { mispredicted: true }),
            TraceRecord::new(Pc::new(0x118), Op::Serialize),
        ]
    }

    #[test]
    fn round_trip() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_round_trip() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &[]).unwrap();
        assert_eq!(read_trace(&bytes[..]).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTATRACE_______".to_vec();
        assert!(matches!(
            read_trace(&bytes[..]),
            Err(TraceCodecError::BadMagic)
        ));
    }

    #[test]
    fn truncated_rejected() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &trace).unwrap();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            read_trace(&bytes[..]),
            Err(TraceCodecError::Truncated)
        ));
    }

    #[test]
    fn bad_tag_rejected() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &[TraceRecord::alu(Pc::new(0))]).unwrap();
        bytes[16] = 99; // corrupt the tag
        assert!(matches!(
            read_trace(&bytes[..]),
            Err(TraceCodecError::BadTag(99))
        ));
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            TraceCodecError::BadMagic,
            TraceCodecError::BadTag(9),
            TraceCodecError::Truncated,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
