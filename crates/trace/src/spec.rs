//! Workload specifications and the four paper presets.
//!
//! A [`WorkloadSpec`] fully describes one synthetic commercial workload:
//! its *transaction templates* (recurring sequences of data-miss clusters
//! and cold-code runs), its footprints, and its filler-instruction mix.
//! See the crate docs for the modelling rationale.
//!
//! The four presets are calibrated so that, on the default machine of
//! §4.4, the baseline (no prefetching) simulation lands near Table 1 of
//! the paper:
//!
//! | workload            | CPI  | epochs/1k | L2 inst mr | L2 load mr |
//! |---------------------|------|-----------|------------|------------|
//! | database (OLTP)     | 3.27 | 4.07      | 1.00       | 6.23       |
//! | TPC-W               | 2.00 | 1.59      | 0.71       | 1.27       |
//! | SPECjbb2005         | 2.06 | 2.65      | 0.12       | 4.30       |
//! | SPECjAppServer2004  | 2.78 | 3.25      | 1.57       | 2.64       |

use serde::{Deserialize, Serialize};

/// Address-space bases for the disjoint line pools (line indices, i.e.
/// byte address >> 6). Chosen far apart so pools can never collide.
pub mod layout {
    /// Cold (miss-prone) code pool base, as a line index.
    pub const COLD_CODE_BASE: u64 = 0x4000_0000_0000 >> 6;
    /// Hot (L1I-resident) code pool base.
    pub const HOT_CODE_BASE: u64 = 0x4400_0000_0000 >> 6;
    /// Main data pool base (transaction working data).
    pub const DATA_BASE: u64 = 0x8000_0000_0000 >> 6;
    /// Warm (L2-resident) shared data pool base.
    pub const WARM_BASE: u64 = 0x9000_0000_0000 >> 6;
    /// Hot (L1D-resident) shared data pool base.
    pub const HOT_DATA_BASE: u64 = 0x9400_0000_0000 >> 6;
}

/// Full description of one synthetic workload.
///
/// Construct via a preset and adjust with the struct-update syntax or
/// [`WorkloadSpec::scaled`]:
///
/// ```
/// use ebcp_trace::WorkloadSpec;
/// let small = WorkloadSpec::specjbb2005().scaled(1, 4);
/// assert_eq!(small.templates, WorkloadSpec::specjbb2005().templates / 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Human-readable name ("database", "tpcw", ...).
    pub name: String,
    /// Seed perturbation so two presets with the same user seed differ.
    pub seed_tag: u64,
    /// Address-space id. Every pool base is shifted by
    /// `addr_space << 32` lines (see [`WorkloadSpec::pool_base`]), so
    /// workloads with distinct ids touch provably disjoint lines — the
    /// consolidated-server CMP scenario. `seed_tag` alone only varies
    /// the access *pattern* over the shared pools.
    pub addr_space: u64,

    // --- structure ---------------------------------------------------
    /// Number of transaction templates.
    pub templates: usize,
    /// Segments (gap + event) per template.
    pub segments_per_template: usize,
    /// Mean filler instructions between events. Must exceed the ROB size
    /// so consecutive clusters land in distinct epochs.
    pub gap_mean: u32,
    /// Relative jitter applied to each segment's gap (0.25 = ±25%).
    pub gap_jitter: f64,
    /// Distribution of loads per miss cluster: `(size, weight)` pairs.
    pub cluster_size_weights: Vec<(usize, f64)>,
    /// Distinct load-site PCs per template (address streams per PC recur,
    /// which is what PC-indexed prefetchers correlate on).
    pub load_sites: usize,

    // --- event mix ----------------------------------------------------
    /// Fraction of segments that are cold-code runs (instruction misses).
    pub cold_frac: f64,
    /// Mean instruction lines per cold-code run.
    pub cold_run_lines: usize,
    /// Fraction of load clusters that are transient (drawn fresh each
    /// execution; unlearnable).
    pub transient_frac: f64,
    /// Fraction of load clusters that are A/B forks (per execution one of
    /// two fixed alternatives runs).
    pub fork_frac: f64,
    /// Fraction of load clusters that belong to spatial-region groups.
    pub spatial_frac: f64,
    /// Consecutive clusters per spatial group (same 2 KB region).
    pub spatial_group_len: usize,
    /// Fraction of load clusters that belong to sequential scans.
    pub stride_frac: f64,
    /// Consecutive clusters per scan group.
    pub stride_group_len: usize,
    /// Per-load probability of substituting a random line at emission.
    pub noise_frac: f64,
    /// Probability (drawn per execution) that a cluster's last load
    /// feeds a mispredicted branch — the window terminates shortly after
    /// the cluster, keeping the epoch's off-chip penalty close to the
    /// full memory latency. When the draw fails AND the following gap is
    /// short, adjacent clusters merge into one epoch, so epoch
    /// boundaries jitter from pass to pass exactly as timing-dependent
    /// windows do on real machines.
    pub dep_break_prob: f64,
    /// Fraction of segments whose filler gap is shorter than the reorder
    /// buffer (60-110 instructions): the source of pass-to-pass epoch
    /// merging.
    pub short_gap_frac: f64,

    // --- footprints (line counts) --------------------------------------
    /// Main data pool size in lines.
    pub data_pool_lines: u64,
    /// Cold code pool size in lines.
    pub cold_code_pool_lines: u64,
    /// Shared warm (L2-resident) pool size in lines.
    pub warm_pool_lines: u64,
    /// Shared hot data (L1D-resident) pool size in lines.
    pub hot_data_pool_lines: u64,
    /// Shared hot code (L1I-resident) pool size in lines.
    pub hot_code_pool_lines: u64,

    // --- filler mix ----------------------------------------------------
    /// Loads per filler instruction.
    pub load_frac: f64,
    /// Stores per filler instruction.
    pub store_frac: f64,
    /// Branches per filler instruction.
    pub branch_frac: f64,
    /// Of filler loads, the fraction aimed at the warm (L2-hit) pool.
    pub warm_frac_of_loads: f64,
    /// Probability a filler branch is mispredicted.
    pub mispredict_prob: f64,
    /// Serializing instructions per 1000 filler instructions.
    pub serialize_per_kilo: f64,
    /// Store misses (write-allocates to the data pool) per 1000 insts.
    pub store_miss_per_kilo: f64,

    // --- evolution (time-varying recurrence) ---------------------------
    /// Template executions per evolution *generation*; 0 disables
    /// evolution (all paper presets). Each generation, a deterministic
    /// [`WorkloadSpec::evolve_frac`] slice of the data-pool cluster
    /// lines drifts to new locations, so miss-sequence recurrence
    /// decays across generations — the evolving-graph-analytics regime
    /// fast-aging prefetchers (AMC) target and epoch-persistent tables
    /// age poorly in.
    pub evolve_every_execs: u64,
    /// Per-generation fraction of cluster lines that drift (0 = none).
    pub evolve_frac: f64,
}

impl WorkloadSpec {
    fn base(name: &str, seed_tag: u64) -> Self {
        WorkloadSpec {
            name: name.to_owned(),
            seed_tag,
            addr_space: 0,
            templates: 512,
            segments_per_template: 32,
            gap_mean: 300,
            gap_jitter: 0.25,
            cluster_size_weights: vec![(1, 0.5), (2, 0.3), (3, 0.2)],
            load_sites: 6,
            cold_frac: 0.1,
            cold_run_lines: 2,
            transient_frac: 0.25,
            fork_frac: 0.15,
            spatial_frac: 0.15,
            spatial_group_len: 3,
            stride_frac: 0.05,
            stride_group_len: 3,
            noise_frac: 0.05,
            dep_break_prob: 0.75,
            short_gap_frac: 0.25,
            data_pool_lines: 1 << 20,
            cold_code_pool_lines: 1 << 17,
            warm_pool_lines: 4096,
            hot_data_pool_lines: 512,
            hot_code_pool_lines: 256,
            load_frac: 0.25,
            store_frac: 0.10,
            branch_frac: 0.15,
            warm_frac_of_loads: 0.25,
            mispredict_prob: 0.08,
            serialize_per_kilo: 0.02,
            store_miss_per_kilo: 0.3,
            evolve_every_execs: 0,
            evolve_frac: 0.0,
        }
    }

    /// The large-scale OLTP database workload: highest miss rates, the
    /// richest epoch structure (≈2 misses per epoch with a heavy tail).
    pub fn database() -> Self {
        WorkloadSpec {
            templates: 880,
            segments_per_template: 40,
            gap_mean: 270,
            gap_jitter: 0.25,
            // mean ≈ 2.2 loads per cluster, with a heavy tail out to 24
            // (hash-join bursts and the like) — the tail is what lets
            // prefetch degrees beyond 8 keep helping (Figure 4).
            cluster_size_weights: vec![
                (1, 0.65),
                (2, 0.21),
                (4, 0.07),
                (8, 0.04),
                (16, 0.02),
                (24, 0.01),
            ],
            cold_frac: 0.14,
            cold_run_lines: 2,
            transient_frac: 0.25,
            fork_frac: 0.22,
            spatial_frac: 0.25,
            stride_frac: 0.05,
            noise_frac: 0.05,
            warm_frac_of_loads: 0.26,
            mispredict_prob: 0.08,
            ..Self::base("database", 0x0d)
        }
    }

    /// TPC-W: instruction-miss heavy, low overall miss density, the
    /// lowest MLP of the four.
    pub fn tpcw() -> Self {
        WorkloadSpec {
            templates: 1200,
            segments_per_template: 30,
            gap_mean: 960,
            gap_jitter: 0.25,
            cluster_size_weights: vec![(1, 0.70), (2, 0.24), (4, 0.03), (8, 0.02), (12, 0.01)],
            cold_frac: 0.25,
            cold_run_lines: 3,
            transient_frac: 0.30,
            fork_frac: 0.28,
            spatial_frac: 0.08,
            stride_frac: 0.05,
            noise_frac: 0.06,
            warm_frac_of_loads: 0.27,
            mispredict_prob: 0.09,
            ..Self::base("tpcw", 0x70)
        }
    }

    /// SPECjbb2005: data-miss dominated (tiny instruction footprint),
    /// lowest on-chip CPI of the four.
    pub fn specjbb2005() -> Self {
        WorkloadSpec {
            templates: 1500,
            segments_per_template: 25,
            gap_mean: 405,
            gap_jitter: 0.25,
            cluster_size_weights: vec![
                (1, 0.68),
                (2, 0.21),
                (3, 0.05),
                (6, 0.03),
                (12, 0.02),
                (16, 0.01),
            ],
            cold_frac: 0.016,
            cold_run_lines: 2,
            transient_frac: 0.12,
            fork_frac: 0.12,
            spatial_frac: 0.30,
            stride_frac: 0.08,
            noise_frac: 0.03,
            warm_frac_of_loads: 0.12,
            mispredict_prob: 0.05,
            ..Self::base("specjbb2005", 0x1b)
        }
    }

    /// SPECjAppServer2004: the most instruction-miss heavy of the four.
    pub fn specjappserver2004() -> Self {
        WorkloadSpec {
            templates: 1660,
            segments_per_template: 20,
            gap_mean: 415,
            gap_jitter: 0.25,
            cluster_size_weights: vec![(1, 0.70), (2, 0.23), (4, 0.04), (8, 0.02), (12, 0.01)],
            cold_frac: 0.31,
            cold_run_lines: 3,
            transient_frac: 0.22,
            fork_frac: 0.30,
            spatial_frac: 0.10,
            stride_frac: 0.05,
            noise_frac: 0.06,
            warm_frac_of_loads: 0.24,
            mispredict_prob: 0.09,
            ..Self::base("specjappserver2004", 0x7a)
        }
    }

    /// Evolving graph analytics: data-miss dominated with learnable
    /// per-template structure — but the structure is *non-stationary*.
    /// Every [`evolve_every_execs`] template executions a deterministic
    /// [`evolve_frac`] slice of the cluster lines drifts to fresh
    /// data-pool locations, so a correlation learned early stops
    /// predicting within a few generations. Not part of the paper's
    /// four (no Table 1 calibration); comparison sweeps opt in via
    /// [`WorkloadSpec::extended_presets`].
    ///
    /// [`evolve_every_execs`]: WorkloadSpec::evolve_every_execs
    /// [`evolve_frac`]: WorkloadSpec::evolve_frac
    pub fn graph_analytics() -> Self {
        WorkloadSpec {
            templates: 700,
            segments_per_template: 36,
            gap_mean: 280,
            gap_jitter: 0.25,
            // Pointer-chase heavy: mostly small dependent clusters with
            // an occasional neighbourhood expansion burst.
            cluster_size_weights: vec![(1, 0.55), (2, 0.25), (4, 0.12), (8, 0.06), (16, 0.02)],
            cold_frac: 0.04,
            cold_run_lines: 2,
            transient_frac: 0.10,
            fork_frac: 0.10,
            spatial_frac: 0.12,
            stride_frac: 0.08,
            noise_frac: 0.03,
            warm_frac_of_loads: 0.15,
            mispredict_prob: 0.07,
            evolve_every_execs: 400,
            evolve_frac: 0.2,
            ..Self::base("graph", 0x9f)
        }
    }

    /// All four presets, in the paper's reporting order.
    pub fn all_presets() -> Vec<WorkloadSpec> {
        vec![
            Self::database(),
            Self::tpcw(),
            Self::specjbb2005(),
            Self::specjappserver2004(),
        ]
    }

    /// The paper's four presets plus the evolving-graph preset — the
    /// roster for comparison sweeps and differential batteries. The
    /// paper's figures keep using [`WorkloadSpec::all_presets`].
    pub fn extended_presets() -> Vec<WorkloadSpec> {
        let mut v = Self::all_presets();
        v.push(Self::graph_analytics());
        v
    }

    /// Scales the workload *footprint* by `num/den`: template count and
    /// the data / cold-code / warm pools shrink together, so the
    /// footprint-to-cache ratio is preserved when the machine's caches
    /// are scaled by the same factor. Per-instruction rates, epoch
    /// structure and filler mix are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the scale would leave no templates.
    #[must_use]
    pub fn scaled(mut self, num: usize, den: usize) -> Self {
        assert!(num > 0 && den > 0, "scale must be positive");
        self.templates = (self.templates * num / den).max(1);
        self.data_pool_lines = (self.data_pool_lines * num as u64 / den as u64).max(1024);
        self.cold_code_pool_lines = (self.cold_code_pool_lines * num as u64 / den as u64).max(256);
        self.warm_pool_lines = (self.warm_pool_lines * num as u64 / den as u64).max(128);
        // Generations track full passes over the template set, so the
        // generation length shrinks with the template count.
        if self.evolve_every_execs > 0 {
            self.evolve_every_execs = (self.evolve_every_execs * num as u64 / den as u64).max(1);
        }
        self
    }

    /// Mean loads per cluster under [`WorkloadSpec::cluster_size_weights`].
    pub fn mean_cluster_size(&self) -> f64 {
        let total: f64 = self.cluster_size_weights.iter().map(|(_, w)| w).sum();
        self.cluster_size_weights
            .iter()
            .map(|&(s, w)| s as f64 * w)
            .sum::<f64>()
            / total
    }

    /// Line-index base of a pool within this workload's address space.
    ///
    /// Pools are shifted by `addr_space << 32` lines — vastly larger
    /// than any pool — so two workloads with different [`addr_space`]
    /// ids can never touch the same line, while `addr_space == 0`
    /// reproduces the historical shared layout.
    ///
    /// [`addr_space`]: WorkloadSpec::addr_space
    pub fn pool_base(&self, base: u64) -> u64 {
        base + (self.addr_space << 32)
    }

    /// Approximate instructions per template execution (gaps + events).
    pub fn insts_per_template(&self) -> u64 {
        let per_seg = self.gap_mean as u64
            + (self.cold_frac * (self.cold_run_lines * 16) as f64
                + (1.0 - self.cold_frac) * self.mean_cluster_size() * 3.0) as u64;
        per_seg * self.segments_per_template as u64
    }

    /// Approximate instructions for one full pass over every template —
    /// the recurrence interval that warm-up must cover.
    pub fn recurrence_interval(&self) -> u64 {
        self.insts_per_template() * self.templates as u64
    }

    /// Basic sanity checks on the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.templates == 0 || self.segments_per_template == 0 {
            return Err("workload needs templates and segments".into());
        }
        if self.gap_mean < 150 {
            return Err(format!(
                "gap_mean {} too small: clusters would merge into one epoch (ROB=128)",
                self.gap_mean
            ));
        }
        if self.cluster_size_weights.is_empty() {
            return Err("cluster_size_weights must not be empty".into());
        }
        let frac_sum = self.load_frac + self.store_frac + self.branch_frac;
        if frac_sum >= 1.0 {
            return Err(format!("filler op fractions sum to {frac_sum} >= 1"));
        }
        for f in [
            self.cold_frac,
            self.transient_frac,
            self.fork_frac,
            self.spatial_frac,
            self.stride_frac,
            self.noise_frac,
            self.warm_frac_of_loads,
            self.mispredict_prob,
        ] {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fraction {f} out of [0,1]"));
            }
        }
        if self.transient_frac + self.fork_frac + self.spatial_frac + self.stride_frac > 1.0 {
            return Err("cluster kind fractions exceed 1".into());
        }
        if !(0.0..=1.0).contains(&self.evolve_frac) {
            return Err(format!("evolve_frac {} out of [0,1]", self.evolve_frac));
        }
        if self.evolve_frac > 0.0 && self.evolve_every_execs == 0 {
            return Err("evolve_frac set but evolve_every_execs is 0".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for spec in WorkloadSpec::all_presets() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn preset_names_distinct() {
        let names: std::collections::HashSet<_> = WorkloadSpec::all_presets()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn mean_cluster_sizes_match_table1_mlp() {
        // Misses per epoch implied by Table 1 (load mr / load epochs).
        let db = WorkloadSpec::database().mean_cluster_size();
        assert!((1.9..2.4).contains(&db), "database MLP {db}");
        let tpcw = WorkloadSpec::tpcw().mean_cluster_size();
        assert!((1.3..1.6).contains(&tpcw), "tpcw MLP {tpcw}");
        let jbb = WorkloadSpec::specjbb2005().mean_cluster_size();
        assert!((1.5..2.0).contains(&jbb), "jbb MLP {jbb}");
        let jas = WorkloadSpec::specjappserver2004().mean_cluster_size();
        assert!((1.3..1.7).contains(&jas), "jas MLP {jas}");
    }

    #[test]
    fn scaling_shrinks_footprint_only() {
        let full = WorkloadSpec::database();
        let quarter = full.clone().scaled(1, 4);
        assert_eq!(quarter.templates, full.templates / 4);
        assert_eq!(quarter.data_pool_lines, full.data_pool_lines / 4);
        assert_eq!(quarter.gap_mean, full.gap_mean);
        assert_eq!(quarter.cluster_size_weights, full.cluster_size_weights);
        quarter.validate().unwrap();
    }

    #[test]
    fn scaling_never_reaches_zero() {
        let tiny = WorkloadSpec::database().scaled(1, 100_000);
        assert!(tiny.templates >= 1);
        assert!(tiny.data_pool_lines >= 1024);
    }

    #[test]
    fn validate_rejects_small_gap() {
        let mut s = WorkloadSpec::database();
        s.gap_mean = 50;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_fat_fractions() {
        let mut s = WorkloadSpec::database();
        s.load_frac = 0.9;
        s.store_frac = 0.2;
        assert!(s.validate().is_err());
    }

    #[test]
    fn extended_presets_add_graph_and_validate() {
        let v = WorkloadSpec::extended_presets();
        assert_eq!(v.len(), 5);
        let names: std::collections::HashSet<_> = v.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 5);
        assert!(names.contains("graph"));
        for s in &v {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
        // The paper's four stay evolution-free.
        for s in WorkloadSpec::all_presets() {
            assert_eq!(s.evolve_every_execs, 0, "{}", s.name);
        }
    }

    #[test]
    fn scaling_shrinks_generation_length() {
        let full = WorkloadSpec::graph_analytics();
        let quarter = full.clone().scaled(1, 4);
        assert_eq!(quarter.evolve_every_execs, full.evolve_every_execs / 4);
        assert_eq!(quarter.evolve_frac, full.evolve_frac);
        // Evolution-free presets must not gain a generation length.
        assert_eq!(WorkloadSpec::database().scaled(1, 4).evolve_every_execs, 0);
    }

    #[test]
    fn validate_rejects_bad_evolution() {
        let mut s = WorkloadSpec::graph_analytics();
        s.evolve_frac = 1.5;
        assert!(s.validate().is_err());
        let mut s = WorkloadSpec::graph_analytics();
        s.evolve_every_execs = 0;
        assert!(s.validate().is_err(), "frac without a generation length");
    }

    #[test]
    fn recurrence_interval_is_plausible() {
        // Full-scale database: around 10M instructions per full pass.
        let i = WorkloadSpec::database().recurrence_interval();
        assert!((5_000_000..20_000_000).contains(&i), "interval {i}");
    }
}
