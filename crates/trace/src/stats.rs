//! Trace-level statistics (cache-independent).

use std::collections::HashSet;
use std::fmt;

use crate::record::{Op, TraceRecord};

/// Summary statistics of a trace slice.
///
/// # Examples
///
/// ```
/// use ebcp_trace::{TraceGenerator, TraceStats, WorkloadSpec};
/// let spec = WorkloadSpec::database().scaled(1, 16);
/// let trace: Vec<_> = TraceGenerator::new(&spec, 1).take(50_000).collect();
/// let stats = TraceStats::analyze(&trace);
/// assert_eq!(stats.records, 50_000);
/// assert!(stats.loads > 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Total records analyzed.
    pub records: u64,
    /// Load instructions.
    pub loads: u64,
    /// Store instructions.
    pub stores: u64,
    /// Branch instructions.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Serializing instructions.
    pub serializes: u64,
    /// Loads flagged as feeding a mispredicted branch.
    pub miss_dependent_loads: u64,
    /// Distinct data lines touched by loads/stores.
    pub distinct_data_lines: u64,
    /// Distinct instruction lines touched by fetches.
    pub distinct_code_lines: u64,
}

impl TraceStats {
    /// Analyzes a trace slice.
    pub fn analyze(trace: &[TraceRecord]) -> Self {
        let mut s = TraceStats {
            records: trace.len() as u64,
            ..TraceStats::default()
        };
        let mut data = HashSet::new();
        let mut code = HashSet::new();
        for r in trace {
            code.insert(r.pc.line().index());
            match r.op {
                Op::Load {
                    addr,
                    feeds_mispredict,
                } => {
                    s.loads += 1;
                    if feeds_mispredict {
                        s.miss_dependent_loads += 1;
                    }
                    data.insert(addr.line().index());
                }
                Op::Store { addr } => {
                    s.stores += 1;
                    data.insert(addr.line().index());
                }
                Op::Branch { mispredicted } => {
                    s.branches += 1;
                    if mispredicted {
                        s.mispredicts += 1;
                    }
                }
                Op::Serialize => s.serializes += 1,
                Op::Alu => {}
            }
        }
        s.distinct_data_lines = data.len() as u64;
        s.distinct_code_lines = code.len() as u64;
        s
    }

    /// Events per 1000 records.
    pub fn per_kilo(&self, count: u64) -> f64 {
        if self.records == 0 {
            0.0
        } else {
            count as f64 * 1000.0 / self.records as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "records:          {}", self.records)?;
        writeln!(f, "loads/1k:         {:.1}", self.per_kilo(self.loads))?;
        writeln!(f, "stores/1k:        {:.1}", self.per_kilo(self.stores))?;
        writeln!(f, "branches/1k:      {:.1}", self.per_kilo(self.branches))?;
        writeln!(
            f,
            "mispredicts/1k:   {:.2}",
            self.per_kilo(self.mispredicts)
        )?;
        writeln!(f, "serializes/1k:    {:.3}", self.per_kilo(self.serializes))?;
        writeln!(f, "distinct data ln: {}", self.distinct_data_lines)?;
        write!(f, "distinct code ln: {}", self.distinct_code_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebcp_types::{Addr, Pc};

    #[test]
    fn counts_each_kind() {
        let trace = vec![
            TraceRecord::alu(Pc::new(0)),
            TraceRecord::load(Pc::new(4), Addr::new(0x100)),
            TraceRecord::new(
                Pc::new(8),
                Op::Load {
                    addr: Addr::new(0x200),
                    feeds_mispredict: true,
                },
            ),
            TraceRecord::store(Pc::new(12), Addr::new(0x100)),
            TraceRecord::new(Pc::new(16), Op::Branch { mispredicted: true }),
            TraceRecord::new(Pc::new(20), Op::Serialize),
        ];
        let s = TraceStats::analyze(&trace);
        assert_eq!(s.records, 6);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.branches, 1);
        assert_eq!(s.mispredicts, 1);
        assert_eq!(s.serializes, 1);
        assert_eq!(s.miss_dependent_loads, 1);
        // 0x100 and 0x200 are distinct lines; 0x100 store dedups.
        assert_eq!(s.distinct_data_lines, 2);
        // PCs 0..20 all in line 0.
        assert_eq!(s.distinct_code_lines, 1);
    }

    #[test]
    fn empty_trace() {
        let s = TraceStats::analyze(&[]);
        assert_eq!(s.records, 0);
        assert_eq!(s.per_kilo(5), 0.0);
    }

    #[test]
    fn display_mentions_loads() {
        let s = TraceStats::analyze(&[TraceRecord::load(Pc::new(0), Addr::new(0))]);
        assert!(s.to_string().contains("loads/1k"));
    }
}
