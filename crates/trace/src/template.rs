//! Transaction-template construction.
//!
//! A [`Template`] is the *recurring* part of a workload: a fixed sequence
//! of segments, each a filler gap followed by an event (a data-miss
//! cluster, an A/B fork, a transient cluster placeholder, or a cold-code
//! run). Templates are built once per workload from the spec's structure
//! seed; the trace generator then replays them (with per-execution noise)
//! in random order.

use ebcp_types::{LineAddr, Pc, LINE_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::spec::{layout, WorkloadSpec};

/// One load of a miss cluster: which instruction (PC) touches which line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterLoad {
    /// The load instruction's PC (a load site inside the template's hot
    /// code window, so per-PC address streams recur).
    pub pc: Pc,
    /// The (line-aligned) data address.
    pub line: LineAddr,
    /// Whether a mispredicted branch depends on this load (window
    /// terminator when the load misses off-chip).
    pub feeds_mispredict: bool,
}

/// The event at the end of a segment.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A recurring data-miss cluster: the misses of one epoch.
    Cluster(Vec<ClusterLoad>),
    /// A data-dependent fork: one of several alternative clusters
    /// executes (commercial transactions follow many code paths).
    Fork(Vec<Vec<ClusterLoad>>),
    /// A transient cluster: `size` loads to lines drawn fresh at each
    /// execution (unlearnable by any history-based prefetcher).
    Transient {
        /// Number of loads.
        size: usize,
        /// The load-site PCs used.
        pcs: Vec<Pc>,
    },
    /// A run of cold instruction lines (off-chip instruction misses),
    /// walked sequentially at 16 instructions per line.
    ColdCode(Vec<LineAddr>),
    /// A control-flow fork between two cold-code runs: one of the two
    /// paths executes. Commercial instruction streams are irregular too —
    /// this is what bounds deep successor chains through code misses.
    ColdFork(Vec<LineAddr>, Vec<LineAddr>),
}

impl Event {
    /// Number of trace records this event expands to (loads incur one
    /// interleaved ALU each; cold lines are 16 instructions).
    pub fn record_len(&self, pick: usize) -> usize {
        match self {
            Event::Cluster(loads) => loads.len() * 2,
            Event::Fork(alts) => alts[pick % alts.len()].len() * 2,
            Event::Transient { size, .. } => size * 2,
            Event::ColdCode(lines) => lines.len() * 16,
            Event::ColdFork(a, b) => {
                (if pick.is_multiple_of(2) {
                    a.len()
                } else {
                    b.len()
                }) * 16
            }
        }
    }
}

/// One segment: a filler gap then an event.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Filler instructions emitted before the event.
    pub gap: u32,
    /// The event.
    pub event: Event,
}

/// A recurring transaction template.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// Template index within the workload.
    pub id: usize,
    /// The segments, executed in order.
    pub segments: Vec<Segment>,
    /// First line of this template's hot-code window (shared pool).
    pub hot_code_base: LineAddr,
    /// Lines in the hot-code window.
    pub hot_code_lines: u64,
    /// First line of this template's hot-data window (shared pool).
    pub hot_data_base: LineAddr,
    /// Lines in the hot-data window.
    pub hot_data_lines: u64,
}

/// A fully constructed workload: every template, ready to execute.
#[derive(Debug, Clone)]
pub struct WorkloadProgram {
    /// The templates.
    pub templates: Vec<Template>,
}

/// Spatial region size in lines (2 KB regions, §5.3 SMS configuration).
pub const REGION_LINES: u64 = 2048 / LINE_BYTES;

const HOT_WINDOW_CODE_LINES: u64 = 32;
const HOT_WINDOW_DATA_LINES: u64 = 48;

fn draw_cluster_size(rng: &mut SmallRng, weights: &[(usize, f64)]) -> usize {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut u = rng.gen::<f64>() * total;
    for &(size, w) in weights {
        if u < w {
            return size;
        }
        u -= w;
    }
    weights.last().map(|&(s, _)| s).unwrap_or(1)
}

struct Builder<'a> {
    spec: &'a WorkloadSpec,
    rng: SmallRng,
    sites: Vec<Pc>,
    site_rr: usize,
}

impl<'a> Builder<'a> {
    fn next_site(&mut self) -> Pc {
        let pc = self.sites[self.site_rr % self.sites.len()];
        self.site_rr += 1;
        pc
    }

    fn random_data_line(&mut self) -> LineAddr {
        LineAddr::from_index(
            self.spec.pool_base(layout::DATA_BASE)
                + self.rng.gen_range(0..self.spec.data_pool_lines),
        )
    }

    fn plain_cluster(&mut self, size: usize) -> Vec<ClusterLoad> {
        let dep = self.rng.gen_bool(self.spec.dep_break_prob);
        (0..size)
            .map(|i| ClusterLoad {
                pc: self.next_site(),
                line: self.random_data_line(),
                feeds_mispredict: i + 1 == size && dep,
            })
            .collect()
    }

    fn spatial_group(&mut self) -> Vec<Event> {
        // One 2 KB region revisited by `spatial_group_len` consecutive
        // epochs, 2 lines each, with a fixed footprint of distinct
        // offsets.
        let region_count = self.spec.data_pool_lines / REGION_LINES;
        let region_base = self.spec.pool_base(layout::DATA_BASE)
            + self.rng.gen_range(0..region_count.max(1)) * REGION_LINES;
        let lines_per = 2usize;
        let need = self.spec.spatial_group_len * lines_per;
        let mut offsets: Vec<u64> = (0..REGION_LINES).collect();
        // Partial Fisher-Yates for the first `need` offsets.
        for i in 0..need.min(offsets.len() - 1) {
            let j = self.rng.gen_range(i..offsets.len());
            offsets.swap(i, j);
        }
        let dep_prob = self.spec.dep_break_prob;
        (0..self.spec.spatial_group_len)
            .map(|g| {
                let dep = self.rng.gen_bool(dep_prob);
                let loads = (0..lines_per)
                    .map(|k| ClusterLoad {
                        pc: self.next_site(),
                        line: LineAddr::from_index(
                            region_base + offsets[(g * lines_per + k) % offsets.len()],
                        ),
                        feeds_mispredict: k + 1 == lines_per && dep,
                    })
                    .collect();
                Event::Cluster(loads)
            })
            .collect()
    }

    fn stride_group(&mut self) -> Vec<Event> {
        // A sequential scan split across consecutive epochs: stream
        // prefetcher material.
        let lines_per = 2usize;
        let span = (self.spec.stride_group_len * lines_per) as u64;
        let base = self.spec.pool_base(layout::DATA_BASE)
            + self
                .rng
                .gen_range(0..self.spec.data_pool_lines.saturating_sub(span).max(1));
        let dep_prob = self.spec.dep_break_prob;
        (0..self.spec.stride_group_len)
            .map(|g| {
                let dep = self.rng.gen_bool(dep_prob);
                let loads = (0..lines_per)
                    .map(|k| ClusterLoad {
                        pc: self.next_site(),
                        line: LineAddr::from_index(base + (g * lines_per + k) as u64),
                        feeds_mispredict: k + 1 == lines_per && dep,
                    })
                    .collect();
                Event::Cluster(loads)
            })
            .collect()
    }

    fn cold_code_run(&mut self) -> Event {
        let len = (self.spec.cold_run_lines.max(1)) as u64;
        let extra = if self.spec.cold_run_lines > 1 && self.rng.gen_bool(0.5) {
            1
        } else {
            0
        };
        let len = len + extra - u64::from(self.rng.gen_bool(0.5) && len > 1);
        let start = self.spec.pool_base(layout::COLD_CODE_BASE)
            + self
                .rng
                .gen_range(0..self.spec.cold_code_pool_lines.saturating_sub(len).max(1));
        Event::ColdCode((0..len).map(|i| LineAddr::from_index(start + i)).collect())
    }

    fn gap(&mut self) -> u32 {
        if self.rng.gen_bool(self.spec.short_gap_frac) {
            // Shorter than the ROB: the preceding cluster's misses can
            // overlap into this segment's cluster when no dependence
            // break fires.
            return self.rng.gen_range(60..=110);
        }
        let jitter = self.spec.gap_jitter;
        let factor = 1.0 + jitter * (self.rng.gen::<f64>() * 2.0 - 1.0);
        ((self.spec.gap_mean as f64 * factor) as u32).max(150)
    }
}

impl WorkloadProgram {
    /// Builds the workload's templates from its spec.
    ///
    /// Construction is deterministic in the spec (including
    /// `seed_tag`) — the same spec always yields the same program, just
    /// as the paper's traces are fixed artifacts.
    pub fn build(spec: &WorkloadSpec) -> Self {
        let templates = (0..spec.templates)
            .map(|id| Self::build_template(spec, id))
            .collect();
        WorkloadProgram { templates }
    }

    fn build_template(spec: &WorkloadSpec, id: usize) -> Template {
        let mut rng =
            SmallRng::seed_from_u64(spec.seed_tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ id as u64);
        let hot_code_base = LineAddr::from_index(
            spec.pool_base(layout::HOT_CODE_BASE)
                + rng.gen_range(
                    0..spec
                        .hot_code_pool_lines
                        .saturating_sub(HOT_WINDOW_CODE_LINES)
                        .max(1),
                ),
        );
        let hot_data_base = LineAddr::from_index(
            spec.pool_base(layout::HOT_DATA_BASE)
                + rng.gen_range(
                    0..spec
                        .hot_data_pool_lines
                        .saturating_sub(HOT_WINDOW_DATA_LINES)
                        .max(1),
                ),
        );
        // Load sites live inside the hot-code window so their instruction
        // fetches stay on-chip. Templates may share hot-code *lines*
        // (the pool is small and L1I-resident), but each template's load
        // instructions are distinct PCs in reality — spread the site
        // slots by template id so PC-indexed prefetchers (GHB PC/DC,
        // SMS) see clean per-site streams instead of cross-template
        // collisions.
        let slots_in_window = HOT_WINDOW_CODE_LINES * 64 / 4;
        let sites: Vec<Pc> = (0..spec.load_sites.max(1))
            .map(|s| {
                let slot = (id as u64 * 23 + s as u64 * 7 + 3) % slots_in_window;
                Pc::new(hot_code_base.base().get() + 4 * slot)
            })
            .collect();
        let mut b = Builder {
            spec,
            rng,
            sites,
            site_rr: 0,
        };

        // Spatial/stride draws expand into `group_len` consecutive
        // segments, so a naive roll would over-represent them (and
        // dilute cold-code runs) in the final *segment* composition.
        // Correct the fresh-draw probabilities so that the slot-weighted
        // fractions match the spec: a group of g slots is drawn with
        // probability frac*D/g, where D = E[slots per fresh cluster
        // draw] solves D = 1 / (1 - Σ frac_g*(g-1)/g).
        let gs = spec.spatial_group_len.max(1) as f64;
        let gt = spec.stride_group_len.max(1) as f64;
        let d =
            1.0 / (1.0 - spec.spatial_frac * (gs - 1.0) / gs - spec.stride_frac * (gt - 1.0) / gt);
        let q_spatial = spec.spatial_frac * d / gs;
        let q_stride = spec.stride_frac * d / gt;
        let q_transient = spec.transient_frac * d;
        let q_fork = spec.fork_frac * d;
        let cold_draw = spec.cold_frac * d / (1.0 - spec.cold_frac + spec.cold_frac * d);

        let mut segments = Vec::with_capacity(spec.segments_per_template);
        let mut pending: std::collections::VecDeque<Event> = std::collections::VecDeque::new();
        while segments.len() < spec.segments_per_template {
            let gap = b.gap();
            let event = if let Some(ev) = pending.pop_front() {
                ev
            } else if b.rng.gen_bool(cold_draw.clamp(0.0, 1.0)) {
                if b.rng.gen_bool(spec.fork_frac) {
                    let (a, alt) = match (b.cold_code_run(), b.cold_code_run()) {
                        (Event::ColdCode(a), Event::ColdCode(alt)) => (a, alt),
                        _ => unreachable!("cold_code_run returns ColdCode"),
                    };
                    Event::ColdFork(a, alt)
                } else {
                    b.cold_code_run()
                }
            } else {
                // A load-cluster slot: decide its flavour.
                let u: f64 = b.rng.gen();
                if u < q_spatial {
                    let mut group = b.spatial_group();
                    let first = group.remove(0);
                    pending.extend(group);
                    first
                } else if u < q_spatial + q_stride {
                    let mut group = b.stride_group();
                    let first = group.remove(0);
                    pending.extend(group);
                    first
                } else if u < q_spatial + q_stride + q_transient {
                    let size = draw_cluster_size(&mut b.rng, &spec.cluster_size_weights);
                    let pcs = (0..size).map(|_| b.next_site()).collect();
                    Event::Transient { size, pcs }
                } else if u < q_spatial + q_stride + q_transient + q_fork {
                    // 2-4 alternative paths, one taken per execution.
                    let n_alts = 2 + b.rng.gen_range(0..3);
                    let alts = (0..n_alts)
                        .map(|_| {
                            let size = draw_cluster_size(&mut b.rng, &spec.cluster_size_weights);
                            b.plain_cluster(size)
                        })
                        .collect();
                    Event::Fork(alts)
                } else {
                    let size = draw_cluster_size(&mut b.rng, &spec.cluster_size_weights);
                    Event::Cluster(b.plain_cluster(size))
                }
            };
            segments.push(Segment { gap, event });
        }

        Template {
            id,
            segments,
            hot_code_base,
            hot_code_lines: HOT_WINDOW_CODE_LINES,
            hot_data_base,
            hot_data_lines: HOT_WINDOW_DATA_LINES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            templates: 8,
            ..WorkloadSpec::database().scaled(1, 16)
        }
    }

    #[test]
    fn build_is_deterministic() {
        let spec = small_spec();
        let a = WorkloadProgram::build(&spec);
        let b = WorkloadProgram::build(&spec);
        assert_eq!(a.templates, b.templates);
    }

    #[test]
    fn different_seed_tags_differ() {
        let spec = small_spec();
        let other = WorkloadSpec {
            seed_tag: spec.seed_tag ^ 0xffff,
            ..spec.clone()
        };
        let a = WorkloadProgram::build(&spec);
        let b = WorkloadProgram::build(&other);
        assert_ne!(a.templates, b.templates);
    }

    #[test]
    fn segment_counts_match_spec() {
        let spec = small_spec();
        let p = WorkloadProgram::build(&spec);
        assert_eq!(p.templates.len(), spec.templates);
        for t in &p.templates {
            assert_eq!(t.segments.len(), spec.segments_per_template);
        }
    }

    #[test]
    fn gaps_are_long_or_deliberately_short() {
        let p = WorkloadProgram::build(&small_spec());
        let (mut long, mut short) = (0, 0);
        for t in &p.templates {
            for s in &t.segments {
                if s.gap >= 150 {
                    long += 1;
                } else {
                    assert!((60..=110).contains(&s.gap), "gap {} in dead zone", s.gap);
                    short += 1;
                }
            }
        }
        assert!(
            long > 0 && short > 0,
            "both gap classes present: {long}/{short}"
        );
    }

    #[test]
    fn cluster_lines_live_in_data_pool() {
        let spec = small_spec();
        let p = WorkloadProgram::build(&spec);
        let lo = layout::DATA_BASE;
        let hi = layout::DATA_BASE + spec.data_pool_lines;
        let check = |loads: &[ClusterLoad]| {
            for l in loads {
                assert!(
                    (lo..hi).contains(&l.line.index()),
                    "line {:x} outside pool",
                    l.line.index()
                );
            }
        };
        for t in &p.templates {
            for s in &t.segments {
                match &s.event {
                    Event::Cluster(c) => check(c),
                    Event::Fork(alts) => {
                        for a in alts {
                            check(a);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn cold_runs_live_in_code_pool() {
        let spec = small_spec();
        let p = WorkloadProgram::build(&spec);
        let lo = layout::COLD_CODE_BASE;
        let hi = layout::COLD_CODE_BASE + spec.cold_code_pool_lines;
        let mut cold_runs = 0;
        for t in &p.templates {
            for s in &t.segments {
                if let Event::ColdCode(lines) = &s.event {
                    cold_runs += 1;
                    for l in lines {
                        assert!((lo..hi).contains(&l.index()));
                    }
                    // Runs are sequential.
                    for w in lines.windows(2) {
                        assert_eq!(w[1].delta_from(w[0]), 1);
                    }
                }
            }
        }
        assert!(cold_runs > 0, "database preset must contain cold code");
    }

    #[test]
    fn load_site_pcs_inside_hot_window() {
        let p = WorkloadProgram::build(&small_spec());
        for t in &p.templates {
            let lo = t.hot_code_base.index();
            let hi = lo + t.hot_code_lines;
            for s in &t.segments {
                let check = |loads: &[ClusterLoad]| {
                    for l in loads {
                        let line = l.pc.line().index();
                        assert!((lo..hi).contains(&line), "site pc outside hot window");
                    }
                };
                match &s.event {
                    Event::Cluster(c) => check(c),
                    Event::Fork(alts) => {
                        for a in alts {
                            check(a);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn event_record_len() {
        let c = Event::Cluster(vec![ClusterLoad {
            pc: Pc::new(0),
            line: LineAddr::from_index(0),
            feeds_mispredict: false,
        }]);
        assert_eq!(c.record_len(0), 2);
        let cc = Event::ColdCode(vec![LineAddr::from_index(0), LineAddr::from_index(1)]);
        assert_eq!(cc.record_len(0), 32);
    }

    #[test]
    fn mixture_contains_all_flavours() {
        let spec = WorkloadSpec {
            templates: 32,
            ..WorkloadSpec::database().scaled(1, 8)
        };
        let p = WorkloadProgram::build(&spec);
        let (mut clusters, mut forks, mut transients, mut cold) = (0, 0, 0, 0);
        for t in &p.templates {
            for s in &t.segments {
                match &s.event {
                    Event::Cluster(_) => clusters += 1,
                    Event::Fork(_) => forks += 1,
                    Event::Transient { .. } => transients += 1,
                    Event::ColdCode(_) | Event::ColdFork(..) => cold += 1,
                }
            }
        }
        assert!(
            clusters > 0 && forks > 0 && transients > 0 && cold > 0,
            "clusters={clusters} forks={forks} transients={transients} cold={cold}"
        );
    }
}
