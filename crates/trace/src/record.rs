//! The trace record format.
//!
//! One record per retired instruction. The simulator's core model needs
//! exactly the information a trace-driven epoch-model simulation consumes:
//! the PC (for instruction fetch and PC-indexed prefetchers), the
//! operation class, data addresses for loads/stores, and the two
//! micro-architectural hints the window-termination conditions depend on
//! (branch mispredictions and loads that feed a mispredicted branch).

use ebcp_types::{Addr, Pc};
use serde::{Deserialize, Serialize};

/// The operation performed by one retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// A non-memory, non-branch instruction (ALU, FP, ...).
    Alu,
    /// A data load.
    Load {
        /// Byte address loaded.
        addr: Addr,
        /// Whether a later mispredicted branch depends on this load's
        /// value. If the load misses off-chip, the window terminates
        /// shortly after (§2.1: "mispredicted branches that are dependent
        /// on an off-chip miss" are a window-termination condition).
        feeds_mispredict: bool,
    },
    /// A data store (never trains the prefetcher; weak consistency).
    Store {
        /// Byte address stored.
        addr: Addr,
    },
    /// A branch.
    Branch {
        /// Whether the branch was mispredicted (pipeline refill charge).
        mispredicted: bool,
    },
    /// A serializing instruction (membar, trap...): the window cannot
    /// extend past it while off-chip misses are outstanding.
    Serialize,
}

impl Op {
    /// The data address touched, if any.
    pub const fn data_addr(self) -> Option<Addr> {
        match self {
            Op::Load { addr, .. } | Op::Store { addr } => Some(addr),
            _ => None,
        }
    }

    /// Whether this is a load.
    pub const fn is_load(self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// Whether this is a store.
    pub const fn is_store(self) -> bool {
        matches!(self, Op::Store { .. })
    }
}

/// One retired instruction of the trace.
///
/// # Examples
///
/// ```
/// use ebcp_trace::{Op, TraceRecord};
/// use ebcp_types::{Addr, Pc};
///
/// let r = TraceRecord::new(Pc::new(0x1000), Op::Load { addr: Addr::new(0x8000), feeds_mispredict: false });
/// assert_eq!(r.op.data_addr(), Some(Addr::new(0x8000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Program counter of the instruction.
    pub pc: Pc,
    /// What the instruction does.
    pub op: Op,
}

impl TraceRecord {
    /// Creates a record.
    pub const fn new(pc: Pc, op: Op) -> Self {
        TraceRecord { pc, op }
    }

    /// Shorthand for an ALU record.
    pub const fn alu(pc: Pc) -> Self {
        TraceRecord { pc, op: Op::Alu }
    }

    /// Shorthand for a plain load record.
    pub const fn load(pc: Pc, addr: Addr) -> Self {
        TraceRecord {
            pc,
            op: Op::Load {
                addr,
                feeds_mispredict: false,
            },
        }
    }

    /// Shorthand for a store record.
    pub const fn store(pc: Pc, addr: Addr) -> Self {
        TraceRecord {
            pc,
            op: Op::Store { addr },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_addr_extraction() {
        assert_eq!(Op::Alu.data_addr(), None);
        assert_eq!(Op::Serialize.data_addr(), None);
        assert_eq!(Op::Branch { mispredicted: true }.data_addr(), None);
        assert_eq!(
            Op::Load {
                addr: Addr::new(4),
                feeds_mispredict: true
            }
            .data_addr(),
            Some(Addr::new(4))
        );
        assert_eq!(
            Op::Store { addr: Addr::new(8) }.data_addr(),
            Some(Addr::new(8))
        );
    }

    #[test]
    fn kind_predicates() {
        assert!(Op::Load {
            addr: Addr::new(0),
            feeds_mispredict: false
        }
        .is_load());
        assert!(!Op::Store { addr: Addr::new(0) }.is_load());
        assert!(Op::Store { addr: Addr::new(0) }.is_store());
        assert!(!Op::Alu.is_store());
    }

    #[test]
    fn shorthand_constructors() {
        let pc = Pc::new(0x40);
        assert_eq!(TraceRecord::alu(pc).op, Op::Alu);
        assert_eq!(
            TraceRecord::load(pc, Addr::new(1)).op.data_addr(),
            Some(Addr::new(1))
        );
        assert!(TraceRecord::store(pc, Addr::new(1)).op.is_store());
    }
}
