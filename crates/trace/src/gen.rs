//! The trace generator: executes templates in random order, expanding
//! each into trace records with per-execution noise.

use std::sync::Arc;

use ebcp_types::{LineAddr, Pc};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::record::{Op, TraceRecord};
use crate::spec::{layout, WorkloadSpec};
use crate::template::{ClusterLoad, Event, Template, WorkloadProgram};

/// An infinite, deterministic iterator of [`TraceRecord`]s for one
/// workload.
///
/// Structure (templates, cluster addresses, cold-code runs) is fixed by
/// the spec; runtime randomness (template order, fork choices, transient
/// addresses, noise substitutions, the filler mix) is driven by `seed`.
/// Two generators with the same `(spec, seed)` produce identical traces.
///
/// # Examples
///
/// ```
/// use ebcp_trace::{TraceGenerator, WorkloadSpec};
/// let spec = WorkloadSpec::specjbb2005().scaled(1, 16);
/// let n = TraceGenerator::new(&spec, 7).take(1000).count();
/// assert_eq!(n, 1000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    program: Arc<WorkloadProgram>,
    spec: WorkloadSpec,
    rng: SmallRng,
    /// Records of the current template instance, consumed from `pos`.
    /// A plain `Vec` + cursor (not a `VecDeque`): the buffer refills
    /// only when fully drained, so pops never interleave with pushes,
    /// and a contiguous buffer is what `next_chunk` copies from.
    buf: Vec<TraceRecord>,
    pos: usize,
    // Filler op thresholds, precomputed.
    p_serialize: f64,
    p_load: f64,
    p_store: f64,
    p_branch: f64,
    p_store_miss: f64,
    executions: u64,
    /// `spec.evolve_frac` in 32.32 fixed point; 0 disables evolution.
    evolve_frac_fp: u64,
}

impl TraceGenerator {
    /// Creates a generator for `spec`, with runtime randomness from
    /// `seed`. Builds the workload program; reuse
    /// [`TraceGenerator::with_program`] to share one program across many
    /// generators.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        Self::with_program(Arc::new(WorkloadProgram::build(spec)), spec.clone(), seed)
    }

    /// Creates a generator over an already-built program.
    pub fn with_program(program: Arc<WorkloadProgram>, spec: WorkloadSpec, seed: u64) -> Self {
        let p_serialize = spec.serialize_per_kilo / 1000.0;
        let p_load = p_serialize + spec.load_frac;
        let p_store = p_load + spec.store_frac;
        let p_branch = p_store + spec.branch_frac;
        // Store misses are drawn per *store*: convert the per-1000-inst
        // rate into a per-store probability.
        let p_store_miss = if spec.store_frac > 0.0 {
            (spec.store_miss_per_kilo / 1000.0 / spec.store_frac).min(1.0)
        } else {
            0.0
        };
        let evolve_frac_fp = if spec.evolve_every_execs > 0 {
            (spec.evolve_frac * 4_294_967_296.0) as u64
        } else {
            0
        };
        TraceGenerator {
            program,
            rng: SmallRng::seed_from_u64(seed ^ spec.seed_tag.rotate_left(17)),
            spec,
            buf: Vec::new(),
            pos: 0,
            p_serialize,
            p_load,
            p_store,
            p_branch,
            p_store_miss,
            executions: 0,
            evolve_frac_fp,
        }
    }

    /// Number of template executions expanded so far.
    pub const fn executions(&self) -> u64 {
        self.executions
    }

    /// Collects exactly `n` records into a vector.
    pub fn collect_n(&mut self, n: usize) -> Vec<TraceRecord> {
        let mut v = Vec::with_capacity(n);
        while v.len() < n {
            if self.pos == self.buf.len() {
                self.refill();
                if self.buf.is_empty() {
                    break;
                }
            }
            let take = (n - v.len()).min(self.buf.len() - self.pos);
            v.extend_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
        }
        v
    }

    /// Refills `out` (cleared first) with up to `max` records, copied
    /// from the internal buffer slice-at-a-time.
    ///
    /// Yields exactly the sequence that `max` calls to `next` would —
    /// batched delivery changes how records travel, never which
    /// records — while letting the caller reuse one allocation for the
    /// life of a run. Returns the number of records delivered (always
    /// `max` for this infinite generator, unless `max` is 0).
    pub fn next_chunk(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        out.clear();
        while out.len() < max {
            if self.pos == self.buf.len() {
                self.refill();
                if self.buf.is_empty() {
                    break;
                }
            }
            let take = (max - out.len()).min(self.buf.len() - self.pos);
            out.extend_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
        }
        out.len()
    }

    /// Drops the drained buffer contents and expands the next template
    /// instance into it.
    fn refill(&mut self) {
        self.buf.clear();
        self.pos = 0;
        self.emit_instance();
    }

    fn random_data_line(rng: &mut SmallRng, spec: &WorkloadSpec) -> LineAddr {
        LineAddr::from_index(
            spec.pool_base(layout::DATA_BASE) + rng.gen_range(0..spec.data_pool_lines),
        )
    }

    /// splitmix64-style avalanche, used for evolution phases/targets so
    /// drift consumes no RNG draws (evolution-free specs stay
    /// byte-identical, and drift is stable across chunking/streaming).
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        x ^ (x >> 33)
    }

    /// The current identity of a template cluster line under workload
    /// evolution (see [`WorkloadSpec::evolve_every_execs`]).
    ///
    /// Each line has a fixed-point phase; by generation `g` it has
    /// drifted `(g * evolve_frac_fp + phase) >> 32` times, so exactly an
    /// `evolve_frac` slice of lines drifts per generation, every line
    /// eventually drifts, and a line's location is stable *between* its
    /// drift events (recurrence persists, then breaks). O(1) per load,
    /// no RNG draws, deterministic in `executions` alone.
    fn evolved_line(&self, line: LineAddr) -> LineAddr {
        if self.evolve_frac_fp == 0 {
            return line;
        }
        let g = self.executions / self.spec.evolve_every_execs;
        let idx = line.index();
        let phase_fp = Self::mix(idx) & 0xFFFF_FFFF;
        let drifts = ((g as u128 * self.evolve_frac_fp as u128 + phase_fp as u128) >> 32) as u64;
        if drifts == 0 {
            return line;
        }
        let slot =
            Self::mix(idx ^ drifts.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.spec.data_pool_lines;
        LineAddr::from_index(self.spec.pool_base(layout::DATA_BASE) + slot)
    }

    fn emit_filler(&mut self, n: u32, t: &Template, pc_cursor: &mut u64) {
        let code_span = t.hot_code_lines * 64;
        let code_base = t.hot_code_base.base().get();
        for _ in 0..n {
            *pc_cursor = (*pc_cursor + 4) % code_span;
            let pc = Pc::new(code_base + *pc_cursor);
            let u: f64 = self.rng.gen();
            let op = if u < self.p_serialize {
                Op::Serialize
            } else if u < self.p_load {
                let addr = if self.rng.gen_bool(self.spec.warm_frac_of_loads) {
                    let l = self.spec.pool_base(layout::WARM_BASE)
                        + self.rng.gen_range(0..self.spec.warm_pool_lines);
                    LineAddr::from_index(l).base()
                } else {
                    let l = t.hot_data_base.index() + self.rng.gen_range(0..t.hot_data_lines);
                    LineAddr::from_index(l).base()
                };
                Op::Load {
                    addr,
                    feeds_mispredict: false,
                }
            } else if u < self.p_store {
                let addr = if self.rng.gen_bool(self.p_store_miss) {
                    Self::random_data_line(&mut self.rng, &self.spec).base()
                } else {
                    let l = t.hot_data_base.index() + self.rng.gen_range(0..t.hot_data_lines);
                    LineAddr::from_index(l).base()
                };
                Op::Store { addr }
            } else if u < self.p_branch {
                Op::Branch {
                    mispredicted: self.rng.gen_bool(self.spec.mispredict_prob),
                }
            } else {
                Op::Alu
            };
            self.buf.push(TraceRecord::new(pc, op));
        }
    }

    fn emit_cluster(&mut self, loads: &[ClusterLoad], t: &Template, pc_cursor: &mut u64) {
        let code_span = t.hot_code_lines * 64;
        let code_base = t.hot_code_base.base().get();
        // Per-execution dependence draw: epoch boundaries jitter from
        // pass to pass (see WorkloadSpec::dep_break_prob).
        let dep = self.rng.gen_bool(self.spec.dep_break_prob);
        for (i, l) in loads.iter().enumerate() {
            let line = if self.rng.gen_bool(self.spec.noise_frac) {
                Self::random_data_line(&mut self.rng, &self.spec)
            } else {
                self.evolved_line(l.line)
            };
            self.buf.push(TraceRecord::new(
                l.pc,
                Op::Load {
                    addr: line.base(),
                    feeds_mispredict: i + 1 == loads.len() && dep,
                },
            ));
            // One interleaved ALU keeps loads from being literally
            // back-to-back without separating them into different epochs.
            *pc_cursor = (*pc_cursor + 4) % code_span;
            self.buf
                .push(TraceRecord::alu(Pc::new(code_base + *pc_cursor)));
        }
    }

    fn emit_transient(&mut self, size: usize, pcs: &[Pc], t: &Template, pc_cursor: &mut u64) {
        let dep = self.rng.gen_bool(self.spec.dep_break_prob);
        let loads: Vec<ClusterLoad> = (0..size)
            .map(|i| ClusterLoad {
                pc: pcs[i % pcs.len().max(1)],
                line: Self::random_data_line(&mut self.rng, &self.spec),
                feeds_mispredict: i + 1 == size && dep,
            })
            .collect();
        // Transient loads never get noise-substituted (they are already
        // random); bypass emit_cluster's noise roll by zero-noise emission.
        let code_span = t.hot_code_lines * 64;
        let code_base = t.hot_code_base.base().get();
        for l in &loads {
            self.buf.push(TraceRecord::new(
                l.pc,
                Op::Load {
                    addr: l.line.base(),
                    feeds_mispredict: l.feeds_mispredict,
                },
            ));
            *pc_cursor = (*pc_cursor + 4) % code_span;
            self.buf
                .push(TraceRecord::alu(Pc::new(code_base + *pc_cursor)));
        }
    }

    fn emit_cold_code(&mut self, lines: &[LineAddr]) {
        for line in lines {
            let base = line.base().get();
            for k in 0..16u64 {
                self.buf.push(TraceRecord::alu(Pc::new(base + 4 * k)));
            }
        }
    }

    fn emit_instance(&mut self) {
        let idx = self.rng.gen_range(0..self.program.templates.len());
        let t = Arc::clone(&self.program).templates[idx].clone();
        self.executions += 1;
        let mut pc_cursor: u64 = 0;
        for seg in &t.segments {
            self.emit_filler(seg.gap, &t, &mut pc_cursor);
            match &seg.event {
                Event::Cluster(loads) => self.emit_cluster(loads, &t, &mut pc_cursor),
                Event::Fork(alts) => {
                    let pick = self.rng.gen_range(0..alts.len());
                    self.emit_cluster(&alts[pick], &t, &mut pc_cursor);
                }
                Event::Transient { size, pcs } => {
                    self.emit_transient(*size, pcs, &t, &mut pc_cursor)
                }
                Event::ColdCode(lines) => self.emit_cold_code(lines),
                Event::ColdFork(a, b) => {
                    let lines = if self.rng.gen_bool(0.5) { a } else { b };
                    self.emit_cold_code(lines);
                }
            }
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    #[inline]
    fn next(&mut self) -> Option<TraceRecord> {
        if self.pos == self.buf.len() {
            self.refill();
            if self.buf.is_empty() {
                return None;
            }
        }
        let rec = self.buf[self.pos];
        self.pos += 1;
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorkloadSpec {
        WorkloadSpec {
            templates: 8,
            ..WorkloadSpec::database().scaled(1, 16)
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = small();
        let a: Vec<_> = TraceGenerator::new(&spec, 1).take(20_000).collect();
        let b: Vec<_> = TraceGenerator::new(&spec, 1).take(20_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let spec = small();
        let a: Vec<_> = TraceGenerator::new(&spec, 1).take(20_000).collect();
        let b: Vec<_> = TraceGenerator::new(&spec, 2).take(20_000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn op_mix_roughly_matches_spec() {
        let spec = small();
        let trace: Vec<_> = TraceGenerator::new(&spec, 3).take(200_000).collect();
        let loads = trace.iter().filter(|r| r.op.is_load()).count() as f64;
        let stores = trace.iter().filter(|r| r.op.is_store()).count() as f64;
        let branches = trace
            .iter()
            .filter(|r| matches!(r.op, Op::Branch { .. }))
            .count() as f64;
        let n = trace.len() as f64;
        // Events add loads beyond the filler fraction; allow slack.
        assert!(
            (loads / n - spec.load_frac).abs() < 0.05,
            "load frac {}",
            loads / n
        );
        assert!(
            (stores / n - spec.store_frac).abs() < 0.03,
            "store frac {}",
            stores / n
        );
        assert!(
            (branches / n - spec.branch_frac).abs() < 0.03,
            "branch frac {}",
            branches / n
        );
    }

    #[test]
    fn cluster_recurrence_across_executions() {
        // With few templates and zero noise, miss lines must repeat:
        // count distinct cluster-pool lines touched, which saturates.
        let spec = WorkloadSpec {
            noise_frac: 0.0,
            transient_frac: 0.0,
            ..small()
        };
        let trace: Vec<_> = TraceGenerator::new(&spec, 4).take(400_000).collect();
        let mut data_lines = std::collections::HashSet::new();
        for r in &trace {
            if let Op::Load { addr, .. } = r.op {
                let l = addr.line().index();
                if l >= layout::DATA_BASE && l < layout::DATA_BASE + spec.data_pool_lines {
                    data_lines.insert(l);
                }
            }
        }
        // 8 templates x ~34 clusters x ~2 lines ~= hundreds, not tens of
        // thousands: the same lines recur.
        assert!(
            data_lines.len() < 3000,
            "distinct data lines {}",
            data_lines.len()
        );
        assert!(data_lines.len() > 50);
    }

    #[test]
    fn collect_n_returns_exact_count() {
        let mut g = TraceGenerator::new(&small(), 9);
        assert_eq!(g.collect_n(12_345).len(), 12_345);
    }

    #[test]
    fn next_chunk_matches_iterator_sequence() {
        let spec = small();
        let expect: Vec<_> = TraceGenerator::new(&spec, 8).take(50_000).collect();
        let mut g = TraceGenerator::new(&spec, 8);
        let mut got = Vec::with_capacity(expect.len());
        let mut chunk = Vec::new();
        // Awkward chunk sizes, straddling template-instance boundaries.
        for sz in [1usize, 7, 333, 4096, 10_000].into_iter().cycle() {
            if got.len() >= expect.len() {
                break;
            }
            let want = sz.min(expect.len() - got.len());
            assert_eq!(g.next_chunk(&mut chunk, want), want);
            got.extend_from_slice(&chunk);
        }
        assert_eq!(got, expect, "batched delivery must not reorder records");
    }

    #[test]
    fn next_chunk_of_zero_is_empty() {
        let mut g = TraceGenerator::new(&small(), 9);
        let mut chunk = vec![TraceRecord::alu(Pc::new(0))];
        assert_eq!(g.next_chunk(&mut chunk, 0), 0);
        assert!(chunk.is_empty(), "chunk must be cleared");
    }

    #[test]
    fn serialize_ops_are_rare_but_present() {
        let spec = WorkloadSpec {
            serialize_per_kilo: 1.0,
            ..small()
        };
        let trace: Vec<_> = TraceGenerator::new(&spec, 5).take(100_000).collect();
        let ser = trace
            .iter()
            .filter(|r| matches!(r.op, Op::Serialize))
            .count();
        assert!(ser > 20 && ser < 400, "serialize count {ser}");
    }

    #[test]
    fn executions_counted() {
        let spec = small();
        let mut g = TraceGenerator::new(&spec, 6);
        let _ = g.collect_n(100_000);
        assert!(g.executions() > 0);
    }

    #[test]
    fn evolution_disabled_is_identity() {
        // All paper presets have evolve_every_execs == 0, so evolved_line
        // must be the identity even deep into a run.
        let mut g = TraceGenerator::new(&small(), 6);
        let _ = g.collect_n(100_000);
        for idx in [layout::DATA_BASE, layout::DATA_BASE + 7919] {
            let l = LineAddr::from_index(idx);
            assert_eq!(g.evolved_line(l), l);
        }
    }

    fn graph_small(evolve_every_execs: u64) -> WorkloadSpec {
        WorkloadSpec {
            templates: 8,
            noise_frac: 0.0,
            transient_frac: 0.0,
            evolve_every_execs,
            ..WorkloadSpec::graph_analytics().scaled(1, 16)
        }
    }

    fn distinct_data_lines(spec: &WorkloadSpec, seed: u64, n: usize) -> usize {
        let base = spec.pool_base(layout::DATA_BASE);
        let mut lines = std::collections::HashSet::new();
        for r in TraceGenerator::new(spec, seed).take(n) {
            if let Op::Load { addr, .. } = r.op {
                let l = addr.line().index();
                if l >= base && l < base + spec.data_pool_lines {
                    lines.insert(l);
                }
            }
        }
        lines.len()
    }

    #[test]
    fn evolution_drifts_cluster_lines_across_generations() {
        // Same structure, same seed; the evolving variant must touch
        // clearly more distinct data-pool lines because template lines
        // drift to fresh locations across generations.
        let frozen = distinct_data_lines(
            &WorkloadSpec {
                evolve_frac: 0.0,
                ..graph_small(0)
            },
            4,
            400_000,
        );
        let evolving = distinct_data_lines(&graph_small(4), 4, 400_000);
        assert!(
            evolving as f64 > frozen as f64 * 1.3,
            "evolving {evolving} vs frozen {frozen}"
        );
    }

    #[test]
    fn evolution_is_deterministic_and_chunk_invariant() {
        let spec = graph_small(4);
        let expect: Vec<_> = TraceGenerator::new(&spec, 11).take(60_000).collect();
        let again: Vec<_> = TraceGenerator::new(&spec, 11).take(60_000).collect();
        assert_eq!(expect, again);
        let mut g = TraceGenerator::new(&spec, 11);
        assert_eq!(g.collect_n(60_000), expect, "chunked delivery must match");
    }

    #[test]
    fn evolution_preserves_recurrence_within_a_generation() {
        // A drifted line stays put between its drift events: with a very
        // long generation, the evolving trace still recurs heavily.
        let spec = graph_small(1_000_000);
        let lines = distinct_data_lines(&spec, 4, 400_000);
        assert!(lines < 3000, "distinct data lines {lines}");
    }
}
