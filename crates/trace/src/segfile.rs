//! Segmented on-disk trace format for scale-out workloads.
//!
//! Quick-scale traces fit in a `Vec<TraceRecord>`; the ~100x large tier
//! does not. This module stores a trace **once** on disk in a compact,
//! mmap-friendly layout and replays it through the same chunked-delivery
//! interface the engine already consumes, so peak memory is bounded by
//! one *segment* (a fixed-length span of records, cut at record
//! boundaries so epoch structure is preserved across a cut — see
//! DESIGN.md §3f) instead of the whole trace.
//!
//! ```text
//! magic "EBCPSEG1"   (8 bytes)
//! meta_len           (u32 LE)
//! meta               (meta_len bytes; caller-defined collision guard,
//!                     e.g. the canonical workload/seed string)
//! payload            records x 17 bytes, little-endian fixed width:
//!     tag   (u8: 0=Alu 1=Load 2=LoadFeedsMispredict 3=Store
//!                4=Branch 5=BranchMispredicted 6=Serialize)
//!     pc    (u64)
//!     addr  (u64; 0 for ops without a data address)
//! index              n_segs x { records u64, checksum u64 }
//!                    (checksum = FNV-1a 64 over that segment's payload)
//! footer (48 bytes): records u64 | seg_records u64 | n_segs u64
//!                  | index_checksum u64        (FNV-1a over the index)
//!                  | head_checksum u64         (FNV-1a over magic..meta)
//!                  | footer_checksum u64       (FNV-1a over the 40
//!                                               preceding footer bytes)
//! ```
//!
//! The index and totals live in a *footer* so [`TraceSink`] can stream
//! the payload in a single pass without knowing the record count up
//! front. Failure semantics follow the PR 5 cache discipline:
//!
//! * wrong magic, or a verified header whose meta differs from the
//!   caller's expectation → [`SegfileError::Stale`] (a plain cache miss:
//!   regenerate and overwrite);
//! * any checksum/length disagreement → [`SegfileError::Corrupt`]
//!   (callers quarantine the file as `*.corrupt` and regenerate).
//!
//! [`SegmentedTrace::open`] verifies the header, index, footer **and
//! every segment checksum** in one sequential O(segment)-memory pass, so
//! corruption is surfaced at open time (where the quarantine/regenerate
//! machinery lives), and windows loaded during replay can skip
//! re-verification. The cost is one extra sequential read of the file
//! per open; replay itself stays zero-copy under the mmap backing.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ebcp_types::{Addr, Pc};

use crate::record::{Op, TraceRecord};

/// Magic prefix of the segmented trace format, version 1.
pub const SEG_MAGIC: &[u8; 8] = b"EBCPSEG1";
/// Fixed width of one encoded record.
pub const RECORD_BYTES: usize = 17;
/// Width of one index entry (`records u64 | checksum u64`).
pub const INDEX_ENTRY_BYTES: usize = 16;
/// Width of the trailing footer.
pub const FOOTER_BYTES: usize = 48;

// ---------------------------------------------------------------------------
// FNV-1a 64 (local copy: this crate sits below the harness, which owns the
// canonical implementation; the constants are part of the on-disk format).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Incremental FNV-1a 64 state, so the writer can hash a segment while
/// streaming it out and the reader can hash windows as they are walked.
#[derive(Clone, Copy, Debug)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Errors

/// Error opening or validating a segmented trace file.
#[derive(Debug)]
pub enum SegfileError {
    /// The file is not this format version (or carries different meta):
    /// treat as a plain cache miss and regenerate in place.
    Stale,
    /// The file claims to be this format but fails a checksum or length
    /// check: quarantine as `*.corrupt` and regenerate.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for SegfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegfileError::Stale => f.write_str("not a current-version segmented trace"),
            SegfileError::Corrupt(why) => write!(f, "corrupt segmented trace: {why}"),
            SegfileError::Io(e) => write!(f, "segmented trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for SegfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SegfileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SegfileError {
    fn from(e: io::Error) -> Self {
        SegfileError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Record codec (fixed width)

fn encode_record_fixed(out: &mut [u8; RECORD_BYTES], r: &TraceRecord) {
    let (tag, addr) = match r.op {
        Op::Alu => (0u8, 0u64),
        Op::Load {
            addr,
            feeds_mispredict,
        } => (if feeds_mispredict { 2 } else { 1 }, addr.get()),
        Op::Store { addr } => (3, addr.get()),
        Op::Branch { mispredicted } => (if mispredicted { 5 } else { 4 }, 0),
        Op::Serialize => (6, 0),
    };
    out[0] = tag;
    out[1..9].copy_from_slice(&r.pc.get().to_le_bytes());
    out[9..17].copy_from_slice(&addr.to_le_bytes());
}

/// Decodes one fixed-width record. The payload was checksum-verified at
/// open, so a bad tag here means writer-side corruption of our own
/// making — the same trust boundary as a corrupt `PreEvent` kind — and
/// panics rather than threading an error through the replay hot path.
fn decode_record_fixed(buf: &[u8]) -> TraceRecord {
    let tag = buf[0];
    let pc = Pc::new(u64::from_le_bytes(buf[1..9].try_into().unwrap()));
    let addr = u64::from_le_bytes(buf[9..17].try_into().unwrap());
    let op = match tag {
        0 => Op::Alu,
        1 | 2 => Op::Load {
            addr: Addr::new(addr),
            feeds_mispredict: tag == 2,
        },
        3 => Op::Store {
            addr: Addr::new(addr),
        },
        4 | 5 => Op::Branch {
            mispredicted: tag == 5,
        },
        6 => Op::Serialize,
        t => unreachable!("corrupt segment record tag {t} after checksum verification"),
    };
    TraceRecord::new(pc, op)
}

// ---------------------------------------------------------------------------
// Unique tmp names (pid + sequence, so concurrent writers never collide;
// the final rename makes the publish atomic). Local copy of the harness
// store discipline for the same reason as the hash above.

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn unique_tmp(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("seg"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(format!(".tmp.{pid}.{seq}"));
    path.with_file_name(name)
}

// ---------------------------------------------------------------------------
// Writer

/// Single-pass streaming writer: generators emit the trace **once**
/// through this sink; every later replay comes from the file.
///
/// Records stream through a buffered writer with a running per-segment
/// FNV-1a state; [`TraceSink::finish`] closes the partial tail segment,
/// appends the index and footer, and atomically renames the tmp file
/// into place.
pub struct TraceSink {
    w: BufWriter<File>,
    tmp: PathBuf,
    path: PathBuf,
    head_checksum: u64,
    seg_records: u64,
    records: u64,
    seg_fill: u64,
    seg_hash: Fnv64,
    index: Vec<(u64, u64)>,
}

impl TraceSink {
    /// Starts writing a segmented trace that will be published at
    /// `path` on [`finish`](TraceSink::finish). `meta` is an opaque
    /// collision guard (the caller's canonical identity string);
    /// `seg_records` is the fixed segment length in records.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure creating the tmp file.
    ///
    /// # Panics
    ///
    /// Panics if `seg_records` is zero or `meta` exceeds `u32::MAX`.
    pub fn create(path: &Path, meta: &[u8], seg_records: u64) -> io::Result<TraceSink> {
        assert!(seg_records > 0, "segment length must be at least 1 record");
        let meta_len = u32::try_from(meta.len()).expect("meta fits u32");
        let tmp = unique_tmp(path);
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        let mut head = Vec::with_capacity(12 + meta.len());
        head.extend_from_slice(SEG_MAGIC);
        head.extend_from_slice(&meta_len.to_le_bytes());
        head.extend_from_slice(meta);
        w.write_all(&head)?;
        Ok(TraceSink {
            w,
            tmp,
            path: path.to_path_buf(),
            head_checksum: fnv1a64(&head),
            seg_records,
            records: 0,
            seg_fill: 0,
            seg_hash: Fnv64::new(),
            index: Vec::new(),
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    pub fn push(&mut self, r: &TraceRecord) -> io::Result<()> {
        let mut buf = [0u8; RECORD_BYTES];
        encode_record_fixed(&mut buf, r);
        self.seg_hash.update(&buf);
        self.w.write_all(&buf)?;
        self.records += 1;
        self.seg_fill += 1;
        if self.seg_fill == self.seg_records {
            self.close_segment();
        }
        Ok(())
    }

    /// Appends a batch of records (e.g. one generator chunk).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure.
    pub fn push_chunk(&mut self, rs: &[TraceRecord]) -> io::Result<()> {
        for r in rs {
            self.push(r)?;
        }
        Ok(())
    }

    fn close_segment(&mut self) {
        self.index.push((self.seg_fill, self.seg_hash.finish()));
        self.seg_fill = 0;
        self.seg_hash = Fnv64::new();
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Closes the tail segment, writes index + footer, fsyncs and
    /// atomically renames into place. Returns the record count.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O failure; the tmp file is removed on
    /// a failed publish.
    pub fn finish(mut self) -> io::Result<u64> {
        if self.seg_fill > 0 {
            self.close_segment();
        }
        let mut index_bytes = Vec::with_capacity(self.index.len() * INDEX_ENTRY_BYTES);
        for &(records, checksum) in &self.index {
            index_bytes.extend_from_slice(&records.to_le_bytes());
            index_bytes.extend_from_slice(&checksum.to_le_bytes());
        }
        let mut footer = Vec::with_capacity(FOOTER_BYTES);
        footer.extend_from_slice(&self.records.to_le_bytes());
        footer.extend_from_slice(&self.seg_records.to_le_bytes());
        footer.extend_from_slice(&(self.index.len() as u64).to_le_bytes());
        footer.extend_from_slice(&fnv1a64(&index_bytes).to_le_bytes());
        footer.extend_from_slice(&self.head_checksum.to_le_bytes());
        footer.extend_from_slice(&fnv1a64(&footer).to_le_bytes());
        let publish = (|| -> io::Result<()> {
            self.w.write_all(&index_bytes)?;
            self.w.write_all(&footer)?;
            self.w.flush()?;
            self.w.get_ref().sync_all()?;
            std::fs::rename(&self.tmp, &self.path)
        })();
        if publish.is_err() {
            let _ = std::fs::remove_file(&self.tmp);
        }
        publish.map(|()| self.records)
    }
}

// ---------------------------------------------------------------------------
// mmap plumbing (linux only; everything else, and any mmap failure,
// falls back to buffered reads). Raw FFI because the workspace is
// hermetic — no libc crate. The constants are the shared glibc/musl
// Linux values; the page size is queried, never assumed, because
// aarch64 kernels ship 4K/16K/64K pages.

#[cfg(target_os = "linux")]
mod ffi {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const _SC_PAGESIZE: i32 = 30;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn sysconf(name: i32) -> i64;
    }

    pub fn page_size() -> u64 {
        // Every Linux page size is a power of two >= 4096; fall back to
        // the universal lower bound if sysconf misbehaves.
        let ps = unsafe { sysconf(_SC_PAGESIZE) };
        if ps > 0 {
            ps as u64
        } else {
            4096
        }
    }
}

/// How [`SegmentedTrace`] loads segment windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backing {
    /// Zero-copy page-cache windows via `mmap` where available
    /// (silently degrades to [`Backing::Buffered`] elsewhere or when a
    /// mapping fails).
    Mmap,
    /// Plain `seek` + `read` into an owned buffer.
    Buffered,
}

/// One loaded segment window: either an owned buffer or a read-only
/// private mapping (with the page-alignment slack tracked so the
/// payload slice starts at the right byte).
enum Window {
    Buf(Vec<u8>),
    #[cfg(target_os = "linux")]
    Map {
        ptr: *mut std::ffi::c_void,
        map_len: usize,
        delta: usize,
        bytes: usize,
    },
}

// SAFETY: a `Map` window is a read-only MAP_PRIVATE mapping; the raw
// pointer is only dereferenced through `payload()` shared borrows and
// `munmap` is thread-agnostic, so moving the window across threads
// (harness workers) is sound.
unsafe impl Send for Window {}

impl Window {
    fn payload(&self) -> &[u8] {
        match self {
            Window::Buf(v) => v,
            #[cfg(target_os = "linux")]
            Window::Map {
                ptr, delta, bytes, ..
            } => unsafe { std::slice::from_raw_parts((*ptr as *const u8).add(*delta), *bytes) },
        }
    }

    fn resident_bytes(&self) -> usize {
        match self {
            Window::Buf(v) => v.len(),
            #[cfg(target_os = "linux")]
            Window::Map { map_len, .. } => *map_len,
        }
    }
}

impl Drop for Window {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Window::Map { ptr, map_len, .. } = self {
            unsafe {
                ffi::munmap(*ptr, *map_len);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reader

struct SegEntry {
    records: u64,
    checksum: u64,
    /// Absolute record index of this segment's first record.
    first_record: u64,
}

/// Zero-copy reader over a file written by [`TraceSink`].
///
/// Replays records through [`SegmentedTrace::next_chunk`] — the same
/// chunked-delivery contract as [`TraceGenerator::next_chunk`]
/// (`crate::ChunkSource`) — holding at most one segment window resident
/// at a time.
///
/// [`TraceGenerator::next_chunk`]: crate::TraceGenerator::next_chunk
pub struct SegmentedTrace {
    file: File,
    backing: Backing,
    payload_base: u64,
    records: u64,
    seg_records: u64,
    index: Vec<SegEntry>,
    cur_seg: usize,
    /// Records already consumed from the current segment.
    cur_off: u64,
    window: Option<Window>,
}

fn read_exact_at(file: &mut File, pos: u64, buf: &mut [u8]) -> io::Result<()> {
    file.seek(SeekFrom::Start(pos))?;
    file.read_exact(buf)
}

fn le_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().unwrap())
}

impl SegmentedTrace {
    /// Opens and fully validates a segmented trace.
    ///
    /// `expected_meta` must match the meta the file was written with
    /// (the caller's collision guard); a verified header with different
    /// meta is [`SegfileError::Stale`], exactly like a canonical-string
    /// mismatch in the result store. Validation checks the footer and
    /// index checksums, the arithmetic consistency of the layout, and
    /// every segment checksum in one sequential O(segment)-memory pass.
    ///
    /// # Errors
    ///
    /// [`SegfileError::Stale`] for wrong-version/wrong-meta files,
    /// [`SegfileError::Corrupt`] for checksum or length disagreements,
    /// [`SegfileError::Io`] for underlying failures.
    pub fn open(
        path: &Path,
        expected_meta: &[u8],
        backing: Backing,
    ) -> Result<SegmentedTrace, SegfileError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let min_len = (12 + FOOTER_BYTES) as u64;
        if file_len < min_len {
            // Too short to even carry a magic: if the prefix matches our
            // magic it is a truncation (corrupt), otherwise foreign.
            let mut prefix = vec![0u8; file_len.min(8) as usize];
            read_exact_at(&mut file, 0, &mut prefix)?;
            return if prefix.starts_with(&SEG_MAGIC[..prefix.len().min(8)]) && !prefix.is_empty() {
                Err(SegfileError::Corrupt(format!(
                    "file is {file_len} bytes, shorter than the {min_len}-byte minimum"
                )))
            } else {
                Err(SegfileError::Stale)
            };
        }

        let mut head_fixed = [0u8; 12];
        read_exact_at(&mut file, 0, &mut head_fixed)?;
        if &head_fixed[0..8] != SEG_MAGIC {
            return Err(SegfileError::Stale);
        }
        let meta_len = u64::from(u32::from_le_bytes(head_fixed[8..12].try_into().unwrap()));
        let payload_base = 12 + meta_len;
        if payload_base + FOOTER_BYTES as u64 > file_len {
            return Err(SegfileError::Corrupt(format!(
                "meta length {meta_len} overruns the {file_len}-byte file"
            )));
        }

        let mut footer = [0u8; FOOTER_BYTES];
        read_exact_at(&mut file, file_len - FOOTER_BYTES as u64, &mut footer)?;
        if fnv1a64(&footer[0..40]) != le_u64(&footer, 40) {
            return Err(SegfileError::Corrupt("footer checksum mismatch".into()));
        }
        let records = le_u64(&footer, 0);
        let seg_records = le_u64(&footer, 8);
        let n_segs = le_u64(&footer, 16);
        let index_checksum = le_u64(&footer, 24);
        let head_checksum = le_u64(&footer, 32);

        let mut head = vec![0u8; payload_base as usize];
        read_exact_at(&mut file, 0, &mut head)?;
        if fnv1a64(&head) != head_checksum {
            return Err(SegfileError::Corrupt("header checksum mismatch".into()));
        }
        if &head[12..] != expected_meta {
            // Header verified intact but written for different contents:
            // a stale/foreign entry, not damage.
            return Err(SegfileError::Stale);
        }

        if seg_records == 0
            || n_segs != records.div_ceil(seg_records)
            || n_segs > (file_len / INDEX_ENTRY_BYTES as u64)
        {
            return Err(SegfileError::Corrupt(format!(
                "footer geometry inconsistent: {records} records / {seg_records} per segment \
                 vs {n_segs} segments"
            )));
        }
        let expect_len = payload_base
            + records * RECORD_BYTES as u64
            + n_segs * INDEX_ENTRY_BYTES as u64
            + FOOTER_BYTES as u64;
        if expect_len != file_len {
            return Err(SegfileError::Corrupt(format!(
                "file is {file_len} bytes, layout implies {expect_len}"
            )));
        }

        let index_base = payload_base + records * RECORD_BYTES as u64;
        let mut index_bytes = vec![0u8; (n_segs * INDEX_ENTRY_BYTES as u64) as usize];
        read_exact_at(&mut file, index_base, &mut index_bytes)?;
        if fnv1a64(&index_bytes) != index_checksum {
            return Err(SegfileError::Corrupt("index checksum mismatch".into()));
        }
        let mut index = Vec::with_capacity(n_segs as usize);
        let mut first_record = 0u64;
        for (k, entry) in index_bytes.chunks_exact(INDEX_ENTRY_BYTES).enumerate() {
            let seg_len = le_u64(entry, 0);
            let full = seg_len == seg_records;
            let tail = k as u64 == n_segs - 1 && seg_len == records - first_record;
            if seg_len == 0 || (!full && !tail) {
                return Err(SegfileError::Corrupt(format!(
                    "segment {k} claims {seg_len} records, inconsistent with \
                     {seg_records}-record segments over {records} records"
                )));
            }
            index.push(SegEntry {
                records: seg_len,
                checksum: le_u64(entry, 8),
                first_record,
            });
            first_record += seg_len;
        }
        if first_record != records {
            return Err(SegfileError::Corrupt(format!(
                "index sums to {first_record} records, footer claims {records}"
            )));
        }

        // Eager integrity pass: verify every segment checksum now, with
        // one reusable O(segment) buffer, so replay can trust windows
        // without re-hashing and corruption hits the quarantine path at
        // open time.
        let mut buf = Vec::new();
        for (k, seg) in index.iter().enumerate() {
            let len = (seg.records * RECORD_BYTES as u64) as usize;
            buf.resize(len, 0);
            read_exact_at(
                &mut file,
                payload_base + seg.first_record * RECORD_BYTES as u64,
                &mut buf,
            )?;
            if fnv1a64(&buf) != seg.checksum {
                return Err(SegfileError::Corrupt(format!(
                    "segment {k} checksum mismatch"
                )));
            }
        }

        Ok(SegmentedTrace {
            file,
            backing,
            payload_base,
            records,
            seg_records,
            index,
            cur_seg: 0,
            cur_off: 0,
            window: None,
        })
    }

    /// Total records in the trace.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The fixed segment length (the last segment may be shorter).
    pub fn seg_records(&self) -> u64 {
        self.seg_records
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.index.len()
    }

    /// Records in segment `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn segment_records(&self, k: usize) -> u64 {
        self.index[k].records
    }

    /// Bytes resident for the currently loaded window (mapping length
    /// or buffer length) — the quantity the harness memory budget
    /// charges per streamed worker.
    pub fn window_bytes(&self) -> usize {
        self.window.as_ref().map_or(0, Window::resident_bytes)
    }

    /// Repositions the cursor at the start of segment `k`, dropping the
    /// current window.
    ///
    /// # Panics
    ///
    /// Panics if `k > n_segments()` (`== n_segments()` positions at
    /// end-of-trace).
    pub fn seek_segment(&mut self, k: usize) {
        assert!(k <= self.index.len(), "segment {k} out of range");
        self.cur_seg = k;
        self.cur_off = 0;
        self.window = None;
    }

    /// Loads (or returns) the window for `cur_seg`.
    fn window(&mut self) -> io::Result<&Window> {
        if self.window.is_none() {
            let seg = &self.index[self.cur_seg];
            let start = self.payload_base + seg.first_record * RECORD_BYTES as u64;
            let bytes = (seg.records * RECORD_BYTES as u64) as usize;
            let w = match self.backing {
                Backing::Mmap => self
                    .try_mmap(start, bytes)
                    .map_or_else(|| self.read_window(start, bytes), Ok)?,
                Backing::Buffered => self.read_window(start, bytes)?,
            };
            self.window = Some(w);
        }
        Ok(self.window.as_ref().unwrap())
    }

    fn read_window(&mut self, start: u64, bytes: usize) -> io::Result<Window> {
        let mut buf = vec![0u8; bytes];
        read_exact_at(&mut self.file, start, &mut buf)?;
        Ok(Window::Buf(buf))
    }

    #[cfg(target_os = "linux")]
    fn try_mmap(&self, start: u64, bytes: usize) -> Option<Window> {
        use std::os::fd::AsRawFd;
        if bytes == 0 {
            return Some(Window::Buf(Vec::new()));
        }
        let page = ffi::page_size();
        let aligned = start / page * page;
        let delta = (start - aligned) as usize;
        let map_len = delta + bytes;
        let offset = i64::try_from(aligned).ok()?;
        let ptr = unsafe {
            ffi::mmap(
                std::ptr::null_mut(),
                map_len,
                ffi::PROT_READ,
                ffi::MAP_PRIVATE,
                self.file.as_raw_fd(),
                offset,
            )
        };
        if ptr as isize == -1 {
            return None; // silently fall back to buffered
        }
        Some(Window::Map {
            ptr,
            map_len,
            delta,
            bytes,
        })
    }

    #[cfg(not(target_os = "linux"))]
    fn try_mmap(&self, _start: u64, _bytes: usize) -> Option<Window> {
        None
    }

    /// Refills `out` with up to `max` decoded records, advancing the
    /// cursor across segment boundaries as needed. Returns the number
    /// delivered; `0` means end of trace. Same contract as
    /// [`TraceGenerator::next_chunk`](crate::TraceGenerator::next_chunk).
    ///
    /// # Panics
    ///
    /// Panics on I/O failure while loading a window (replay reads from
    /// a file that was fully validated at open; a read failing mid-run
    /// is an environment fault, same as the generator's allocator).
    pub fn next_chunk(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        out.clear();
        while out.len() < max && self.cur_seg < self.index.len() {
            let seg_records = self.index[self.cur_seg].records;
            let want = (max - out.len()) as u64;
            let take = want.min(seg_records - self.cur_off);
            let from = (self.cur_off * RECORD_BYTES as u64) as usize;
            let upto = from + (take * RECORD_BYTES as u64) as usize;
            let window = self
                .window()
                .expect("validated segment window read failed mid-replay");
            for rec in window.payload()[from..upto].chunks_exact(RECORD_BYTES) {
                out.push(decode_record_fixed(rec));
            }
            self.cur_off += take;
            if self.cur_off == seg_records {
                self.cur_seg += 1;
                self.cur_off = 0;
                self.window = None;
            }
        }
        out.len()
    }
}

/// Writes `trace` to `path` in one call (tests and small traces; the
/// large tier streams through [`TraceSink`] directly).
///
/// # Errors
///
/// Returns any underlying I/O failure.
pub fn write_segmented(
    path: &Path,
    meta: &[u8],
    seg_records: u64,
    trace: &[TraceRecord],
) -> io::Result<u64> {
    let mut sink = TraceSink::create(path, meta, seg_records)?;
    sink.push_chunk(trace)?;
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, WorkloadSpec};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ebcp-segfile-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::alu(Pc::new(0x100)),
            TraceRecord::load(Pc::new(0x104), Addr::new(0x8000)),
            TraceRecord::new(
                Pc::new(0x108),
                Op::Load {
                    addr: Addr::new(0x9000),
                    feeds_mispredict: true,
                },
            ),
            TraceRecord::store(Pc::new(0x10c), Addr::new(0xa000)),
            TraceRecord::new(
                Pc::new(0x110),
                Op::Branch {
                    mispredicted: false,
                },
            ),
            TraceRecord::new(Pc::new(0x114), Op::Branch { mispredicted: true }),
            TraceRecord::new(Pc::new(0x118), Op::Serialize),
        ]
    }

    fn read_all(st: &mut SegmentedTrace, chunk: usize) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        while st.next_chunk(&mut buf, chunk) > 0 {
            out.extend_from_slice(&buf);
        }
        out
    }

    #[test]
    fn round_trip_both_backings() {
        let dir = tmpdir("rt");
        let path = dir.join("t.seg");
        let trace = sample();
        assert_eq!(write_segmented(&path, b"meta", 3, &trace).unwrap(), 7);
        for backing in [Backing::Buffered, Backing::Mmap] {
            let mut st = SegmentedTrace::open(&path, b"meta", backing).unwrap();
            assert_eq!(st.records(), 7);
            assert_eq!(st.n_segments(), 3); // 3 + 3 + 1
            assert_eq!(st.segment_records(2), 1);
            for chunk in [1, 2, 3, 5, 100] {
                st.seek_segment(0);
                assert_eq!(read_all(&mut st, chunk), trace, "chunk size {chunk}");
            }
        }
    }

    #[test]
    fn mmap_decode_identical_to_buffered() {
        let dir = tmpdir("ident");
        let path = dir.join("t.seg");
        let spec = WorkloadSpec::database().scaled(1, 64);
        let trace: Vec<_> = TraceGenerator::new(&spec, 7).take(10_000).collect();
        write_segmented(&path, b"m", 1024, &trace).unwrap();
        let mut a = SegmentedTrace::open(&path, b"m", Backing::Mmap).unwrap();
        let mut b = SegmentedTrace::open(&path, b"m", Backing::Buffered).unwrap();
        assert_eq!(read_all(&mut a, 4096), read_all(&mut b, 4096));
        assert_eq!(read_all(&mut b, 4096), Vec::new()); // exhausted
    }

    #[test]
    fn seek_segment_replays_that_segment() {
        let dir = tmpdir("seek");
        let path = dir.join("t.seg");
        let trace = sample();
        write_segmented(&path, b"", 2, &trace).unwrap();
        let mut st = SegmentedTrace::open(&path, b"", Backing::Buffered).unwrap();
        assert_eq!(st.n_segments(), 4);
        st.seek_segment(2);
        let mut buf = Vec::new();
        st.next_chunk(&mut buf, 2);
        assert_eq!(buf, &trace[4..6]);
        // Reading on from here walks to the end.
        st.next_chunk(&mut buf, 100);
        assert_eq!(buf, &trace[6..]);
        assert_eq!(st.next_chunk(&mut buf, 100), 0);
        // Seeking to n_segments() positions at end-of-trace.
        st.seek_segment(4);
        assert_eq!(st.next_chunk(&mut buf, 100), 0);
    }

    #[test]
    fn empty_trace_round_trips() {
        let dir = tmpdir("empty");
        let path = dir.join("t.seg");
        assert_eq!(write_segmented(&path, b"x", 8, &[]).unwrap(), 0);
        let mut st = SegmentedTrace::open(&path, b"x", Backing::Mmap).unwrap();
        assert_eq!(st.records(), 0);
        assert_eq!(st.n_segments(), 0);
        let mut buf = Vec::new();
        assert_eq!(st.next_chunk(&mut buf, 16), 0);
    }

    #[test]
    fn wrong_magic_is_stale() {
        let dir = tmpdir("magic");
        let path = dir.join("t.seg");
        write_segmented(&path, b"", 4, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0..8].copy_from_slice(b"EBCPSEG0");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentedTrace::open(&path, b"", Backing::Buffered),
            Err(SegfileError::Stale)
        ));
    }

    #[test]
    fn meta_mismatch_is_stale() {
        let dir = tmpdir("meta");
        let path = dir.join("t.seg");
        write_segmented(&path, b"workload-a", 4, &sample()).unwrap();
        assert!(matches!(
            SegmentedTrace::open(&path, b"workload-b", Backing::Buffered),
            Err(SegfileError::Stale)
        ));
        // ... but the matching guard opens fine.
        assert!(SegmentedTrace::open(&path, b"workload-a", Backing::Buffered).is_ok());
    }

    #[test]
    fn payload_bit_flip_is_corrupt() {
        let dir = tmpdir("flip");
        let path = dir.join("t.seg");
        write_segmented(&path, b"m", 3, &sample()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the *second* segment's payload.
        let at = 13 + 4 * RECORD_BYTES + 5;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match SegmentedTrace::open(&path, b"m", Backing::Mmap) {
            Err(SegfileError::Corrupt(why)) => assert!(why.contains("segment 1"), "{why}"),
            Err(other) => panic!("expected Corrupt, got {other:?}"),
            Ok(_) => panic!("expected Corrupt, got Ok"),
        }
    }

    #[test]
    fn truncation_is_corrupt() {
        let dir = tmpdir("trunc");
        let path = dir.join("t.seg");
        write_segmented(&path, b"m", 3, &sample()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 5, bytes.len() - FOOTER_BYTES - 3, 30] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(
                    SegmentedTrace::open(&path, b"m", Backing::Buffered),
                    Err(SegfileError::Corrupt(_))
                ),
                "cut at {cut}"
            );
        }
        // A short file that isn't ours at all is stale, not corrupt.
        std::fs::write(&path, b"hello").unwrap();
        assert!(matches!(
            SegmentedTrace::open(&path, b"m", Backing::Buffered),
            Err(SegfileError::Stale)
        ));
    }

    #[test]
    fn index_and_footer_damage_is_corrupt() {
        let dir = tmpdir("idx");
        let path = dir.join("t.seg");
        write_segmented(&path, b"m", 3, &sample()).unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Index entry bit flip.
        let mut bytes = clean.clone();
        let index_base = bytes.len() - FOOTER_BYTES - 3 * INDEX_ENTRY_BYTES;
        bytes[index_base + 2] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentedTrace::open(&path, b"m", Backing::Buffered),
            Err(SegfileError::Corrupt(_))
        ));
        // Footer bit flip.
        let mut bytes = clean.clone();
        let n = bytes.len();
        bytes[n - 20] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentedTrace::open(&path, b"m", Backing::Buffered),
            Err(SegfileError::Corrupt(_))
        ));
        // Trailing garbage changes the length arithmetic.
        let mut bytes = clean;
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            SegmentedTrace::open(&path, b"m", Backing::Buffered),
            Err(SegfileError::Corrupt(_))
        ));
    }

    #[test]
    fn window_bytes_reports_resident_segment() {
        let dir = tmpdir("win");
        let path = dir.join("t.seg");
        let spec = WorkloadSpec::tpcw().scaled(1, 64);
        let trace: Vec<_> = TraceGenerator::new(&spec, 3).take(5_000).collect();
        write_segmented(&path, b"m", 2_000, &trace).unwrap();
        let mut st = SegmentedTrace::open(&path, b"m", Backing::Buffered).unwrap();
        assert_eq!(st.window_bytes(), 0); // nothing loaded yet
        let mut buf = Vec::new();
        st.next_chunk(&mut buf, 10);
        assert_eq!(st.window_bytes(), 2_000 * RECORD_BYTES);
        // Draining past the boundary swaps, never stacks, windows.
        while st.next_chunk(&mut buf, 1_024) > 0 {
            assert!(st.window_bytes() <= 2_000 * RECORD_BYTES + ffi_page_slack());
        }
    }

    #[cfg(target_os = "linux")]
    fn ffi_page_slack() -> usize {
        ffi::page_size() as usize
    }
    #[cfg(not(target_os = "linux"))]
    fn ffi_page_slack() -> usize {
        0
    }

    #[test]
    fn golden_file_pins_format() {
        // The golden file is the io.rs sample trace written with
        // seg_records=3 and meta "golden-v1". Any byte drift in the
        // encoder shows up as a mismatch here; `EBCP_BLESS_GOLDEN=1`
        // regenerates it after an *intentional* format revision.
        let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/trace_v1.seg");
        let dir = tmpdir("golden");
        let path = dir.join("t.seg");
        write_segmented(&path, b"golden-v1", 3, &sample()).unwrap();
        let fresh = std::fs::read(&path).unwrap();
        if std::env::var_os("EBCP_BLESS_GOLDEN").is_some() {
            std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
            std::fs::write(&golden_path, &fresh).unwrap();
        }
        let pinned = std::fs::read(&golden_path).expect("golden file missing");
        assert_eq!(
            fresh, pinned,
            "segment format drifted from the pinned golden file"
        );
        // And the pinned bytes decode to the expected records.
        let mut st = SegmentedTrace::open(&golden_path, b"golden-v1", Backing::Buffered).unwrap();
        assert_eq!(read_all(&mut st, 4), sample());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn arb_record() -> impl Strategy<Value = TraceRecord> {
            (
                0u32..7,
                proptest::prelude::any::<u64>(),
                proptest::prelude::any::<u64>(),
            )
                .prop_map(|(kind, pc, addr)| {
                    let pc = Pc::new(pc);
                    let op = match kind {
                        0 => Op::Alu,
                        1 => Op::Load {
                            addr: Addr::new(addr),
                            feeds_mispredict: false,
                        },
                        2 => Op::Load {
                            addr: Addr::new(addr),
                            feeds_mispredict: true,
                        },
                        3 => Op::Store {
                            addr: Addr::new(addr),
                        },
                        4 => Op::Branch {
                            mispredicted: false,
                        },
                        5 => Op::Branch { mispredicted: true },
                        _ => Op::Serialize,
                    };
                    TraceRecord::new(pc, op)
                })
        }

        proptest! {
            /// Arbitrary records -> encode -> decode through both
            /// backings is identity, for arbitrary segment lengths and
            /// chunk sizes.
            #[test]
            fn encode_decode_round_trips(
                recs in proptest::collection::vec(arb_record(), 0..300),
                seg_records in 1u64..40,
                chunk in 1usize..70,
            ) {
                let dir = tmpdir("prop");
                let path = dir.join("t.seg");
                write_segmented(&path, b"prop", seg_records, &recs).unwrap();
                for backing in [Backing::Buffered, Backing::Mmap] {
                    let mut st = SegmentedTrace::open(&path, b"prop", backing).unwrap();
                    prop_assert_eq!(st.records(), recs.len() as u64);
                    prop_assert_eq!(
                        st.n_segments() as u64,
                        (recs.len() as u64).div_ceil(seg_records)
                    );
                    let back = read_all(&mut st, chunk);
                    prop_assert_eq!(&back, &recs);
                }
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}
