//! Trace format and synthetic commercial workload generators.
//!
//! The paper evaluates on proprietary, hardware-validated SPARC traces of
//! four commercial workloads (a large OLTP database, TPC-W, SPECjbb2005
//! and SPECjAppServer2004). Those traces do not exist outside Sun; this
//! crate replaces them with **synthetic workload generators** built around
//! a *transaction template* model that reproduces the properties the
//! paper's evaluation depends on:
//!
//! * **Recurring irregular miss sequences** — each workload is a mix of
//!   transaction templates; a template's data-miss *clusters* (the misses
//!   of one epoch) and cold-code runs recur every time the template
//!   executes, so correlation prefetchers can learn them, while the
//!   addresses themselves are pointer-chasing-irregular, defeating stride
//!   prefetchers.
//! * **Epoch structure** — clusters are spaced by more filler
//!   instructions than the 128-entry ROB can span, so each cluster forms
//!   one epoch; cluster-size distributions (with a heavy tail) set the
//!   memory-level parallelism, and cold instruction lines terminate the
//!   window immediately, exactly like the paper's window-termination
//!   conditions.
//! * **Control-flow variability** — *fork* segments pick one of two
//!   alternative clusters per execution, bounding prefetch accuracy and
//!   exercising the width-vs-depth trade-off; *noise* substitutes random
//!   lines at emission time.
//! * **Spatial structure** — some templates revisit 2 KB regions with
//!   fixed footprints across consecutive epochs (spatial-memory-streaming
//!   material); a small fraction of clusters are sequential scans (stream
//!   prefetcher material).
//!
//! Four presets ([`WorkloadSpec::database`], [`WorkloadSpec::tpcw`],
//! [`WorkloadSpec::specjbb2005`], [`WorkloadSpec::specjappserver2004`])
//! are calibrated against Table 1 of the paper.
//!
//! # Examples
//!
//! ```
//! use ebcp_trace::{TraceGenerator, WorkloadSpec};
//!
//! let spec = WorkloadSpec::database().scaled(1, 8); // small footprint for tests
//! let trace: Vec<_> = TraceGenerator::new(&spec, 42).take(10_000).collect();
//! assert_eq!(trace.len(), 10_000);
//! // Deterministic: same seed, same trace.
//! let again: Vec<_> = TraceGenerator::new(&spec, 42).take(10_000).collect();
//! assert_eq!(trace, again);
//! ```

pub mod gen;
pub mod io;
pub mod record;
pub mod segfile;
pub mod spec;
pub mod stats;
pub mod template;

pub use gen::TraceGenerator;
pub use io::{read_trace, write_trace, TraceCodecError};
pub use record::{Op, TraceRecord};
pub use segfile::{Backing, SegfileError, SegmentedTrace, TraceSink};
pub use spec::WorkloadSpec;
pub use stats::TraceStats;

/// Chunked trace delivery: refill `out` with up to `max` records,
/// preserving the underlying sequence across calls; `0` means the
/// source is exhausted (generators are infinite and never return `0`
/// for `max > 0`).
///
/// This is the contract [`TraceGenerator::next_chunk`] has always had;
/// the trait exists so the engine's chunked run loop and the two-phase
/// front end accept either a live generator or an on-disk
/// [`SegmentedTrace`] without materializing the records in between.
pub trait ChunkSource {
    /// Refills `out` (cleared first) with up to `max` records.
    fn next_chunk(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize;
}

impl ChunkSource for TraceGenerator {
    fn next_chunk(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        TraceGenerator::next_chunk(self, out, max)
    }
}

impl ChunkSource for SegmentedTrace {
    fn next_chunk(&mut self, out: &mut Vec<TraceRecord>, max: usize) -> usize {
        SegmentedTrace::next_chunk(self, out, max)
    }
}
