//! # EBCP — Epoch-Based Correlation Prefetching
//!
//! A full reproduction of *“Low-Cost Epoch-Based Correlation Prefetching
//! for Commercial Applications”* (Yuan Chou, MICRO 2007): the prefetcher,
//! the epoch-model timing simulator it is evaluated on, synthetic
//! commercial workloads calibrated to the paper's Table 1, and every
//! baseline prefetcher from the paper's comparison.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`types`] — addresses, cycles, access kinds, statistics primitives.
//! * [`trace`] — trace records, binary trace I/O, and the four synthetic
//!   workload generators (`database`, `tpcw`, `specjbb2005`,
//!   `specjappserver2004`).
//! * [`mem`] — caches, MSHRs, the prefetch buffer, and the
//!   split-transaction bus + DRAM timing model.
//! * [`prefetch`] — the event-driven [`prefetch::Prefetcher`] trait and
//!   the baselines: stream, GHB PC/DC, TCP, SMS, Solihin.
//! * [`core`] — **the paper's contribution**: the epoch tracker, the
//!   EMAB, the main-memory correlation table and
//!   [`core::EbcpPrefetcher`].
//! * [`sim`] — the trace-driven epoch-model engine and run helpers.
//! * [`harness`] — parallel experiment orchestration: content-addressed
//!   jobs, a worker pool with shared traces, an on-disk result cache
//!   and run telemetry.
//!
//! # Quickstart
//!
//! ```
//! use ebcp::core::EbcpConfig;
//! use ebcp::sim::{PrefetcherSpec, RunSpec, SimConfig};
//! use ebcp::trace::WorkloadSpec;
//!
//! // A small machine and workload so the doctest stays fast; see the
//! // examples and the `repro` binary for paper-scale runs.
//! let workload = WorkloadSpec::database().scaled(1, 32);
//! let interval = workload.recurrence_interval();
//! let spec = RunSpec {
//!     workload,
//!     seed: 7,
//!     warmup_insts: interval,
//!     measure_insts: interval / 2,
//!     sim: SimConfig::scaled_down(16),
//! };
//! let trace = spec.materialize();
//! let baseline = spec.run_on(&trace, &PrefetcherSpec::None);
//! let ebcp = spec.run_on(&trace, &PrefetcherSpec::Ebcp(EbcpConfig::tuned()));
//! assert!(ebcp.pf_issued > 0);
//! assert!(ebcp.cpi() <= baseline.cpi());
//! ```

pub use ebcp_core as core;
pub use ebcp_harness as harness;
pub use ebcp_mem as mem;
pub use ebcp_prefetch as prefetch;
pub use ebcp_sim as sim;
pub use ebcp_trace as trace;
pub use ebcp_types as types;
